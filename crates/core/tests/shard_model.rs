//! Model-based property test for the sharded simulation kernel: a
//! [`ShardedKernel`] driven through its merged driver must pop exactly the
//! `(time, shard, seq)`-ordered event sequence of a reference model — a
//! flat merged event list with per-shard sequence counters, the
//! specification of what "one big sequential [`EventQueue`] partitioned by
//! shard" means — under arbitrary interleavings of shard-local schedules,
//! cancellable schedules and cancels, cross-shard sends, mailbox barriers,
//! and pops. This is the determinism contract the sharded engines build
//! on: partitioning is a scheduling decision, never an ordering one.

use interweave_core::{Cycles, EventHandle, ShardedKernel};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule on shard `pick % n` at its local now + delta.
    Schedule(usize, u64),
    /// Same, keeping the cancellation handle.
    ScheduleCancellable(usize, u64),
    /// Cancel the i-th handle ever issued (mod count); stale handles must
    /// be rejected identically by kernel and model.
    Cancel(usize),
    /// Cross-shard send `from % n → to % n` at the sender's lookahead
    /// horizon + delta, parked in the mailbox until the next barrier.
    Send(usize, usize, u64),
    /// Mailbox barrier: deliver every pending envelope.
    Flush,
    /// Pop the globally earliest event through the merged driver.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8, 0u64..6).prop_map(|(s, d)| Op::Schedule(s, d)),
        (0usize..8, 0u64..6).prop_map(|(s, d)| Op::ScheduleCancellable(s, d)),
        (0usize..64).prop_map(Op::Cancel),
        (0usize..8, 0usize..8, 0u64..5).prop_map(|(f, t, d)| Op::Send(f, t, d)),
        Just(Op::Flush),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

/// One pending model event: `(time, shard, per-shard seq, payload)` —
/// popped by minimum `(time, shard, seq)`, the kernel's total order.
type Pending = (u64, usize, u64, u64);

/// The reference: what a single merged sequential event queue would do,
/// with shard ids as explicit tags and per-shard sequence counters.
struct Model {
    pending: Vec<Pending>,
    /// Next schedule sequence number, per shard.
    next_seq: Vec<u64>,
    /// Per-shard queue clock (schedules clamp to it; pops advance it).
    now: Vec<u64>,
    /// Posted-but-undelivered envelopes: `(at, from, lane seq, to, payload)`.
    outbox: Vec<(u64, usize, u64, usize, u64)>,
    /// Next send sequence number, per sender lane.
    lane_seq: Vec<u64>,
}

impl Model {
    fn new(n: usize) -> Model {
        Model {
            pending: Vec::new(),
            next_seq: vec![0; n],
            now: vec![0; n],
            outbox: Vec::new(),
            lane_seq: vec![0; n],
        }
    }

    fn schedule(&mut self, shard: usize, at: u64, payload: u64) -> u64 {
        let seq = self.next_seq[shard];
        self.next_seq[shard] += 1;
        self.pending
            .push((at.max(self.now[shard]), shard, seq, payload));
        seq
    }

    fn cancel(&mut self, shard: usize, seq: u64) -> bool {
        match self
            .pending
            .iter()
            .position(|&(_, s, q, _)| s == shard && q == seq)
        {
            Some(i) => {
                self.pending.remove(i);
                true
            }
            None => false,
        }
    }

    fn send(&mut self, from: usize, to: usize, at: u64, payload: u64) {
        let seq = self.lane_seq[from];
        self.lane_seq[from] += 1;
        self.outbox.push((at, from, seq, to, payload));
    }

    /// The barrier: deliver in the canonical `(at, from, lane seq)` order,
    /// so target-shard sequence numbers are interleaving-independent.
    fn flush(&mut self) {
        let mut envs = std::mem::take(&mut self.outbox);
        envs.sort_unstable_by_key(|&(at, from, seq, _, _)| (at, from, seq));
        for (at, _, _, to, payload) in envs {
            self.schedule(to, at, payload);
        }
    }

    fn pop(&mut self) -> Option<(usize, u64, u64)> {
        let i = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, q, _))| (t, s, q))
            .map(|(i, _)| i)?;
        let (t, s, _, p) = self.pending.remove(i);
        self.now[s] = t;
        Some((s, t, p))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn sharded_kernel_equals_the_merged_sequential_model(
        shards in 1usize..8,
        lookahead in 1u64..4,
        ops in prop::collection::vec(op_strategy(), 1..140),
    ) {
        let mut k: ShardedKernel<u64> =
            ShardedKernel::with_lookahead(shards, Cycles(lookahead));
        let mut model = Model::new(shards);
        // Handles issued so far: (shard, kernel handle, model seq).
        let mut handles: Vec<(usize, EventHandle, u64)> = Vec::new();
        let mut next_payload = 0u64;

        for op in &ops {
            match *op {
                Op::Schedule(pick, delta) => {
                    let s = pick % shards;
                    let payload = next_payload;
                    next_payload += 1;
                    let at = k.shard(s).now() + Cycles(delta);
                    prop_assert_eq!(k.shard(s).now().get(), model.now[s]);
                    k.schedule(s, at, payload);
                    model.schedule(s, model.now[s] + delta, payload);
                }
                Op::ScheduleCancellable(pick, delta) => {
                    let s = pick % shards;
                    let payload = next_payload;
                    next_payload += 1;
                    let h = k.schedule_cancellable(s, k.shard(s).now() + Cycles(delta), payload);
                    let seq = model.schedule(s, model.now[s] + delta, payload);
                    handles.push((s, h, seq));
                }
                Op::Cancel(i) => {
                    if !handles.is_empty() {
                        let (s, h, seq) = handles[i % handles.len()];
                        prop_assert_eq!(k.cancel(s, h), model.cancel(s, seq));
                    }
                }
                Op::Send(f, t, delta) => {
                    let (from, to) = (f % shards, t % shards);
                    let payload = next_payload;
                    next_payload += 1;
                    // At or past the conservative horizon, as the lookahead
                    // contract requires of senders.
                    let at = k.shard(from).now() + Cycles(lookahead + delta);
                    k.send(from, to, at, payload);
                    model.send(from, to, model.now[from] + lookahead + delta, payload);
                    prop_assert_eq!(k.pending_sends(), model.outbox.len());
                }
                Op::Flush => {
                    let delivered = k.flush_mailbox();
                    prop_assert_eq!(delivered, model.outbox.len());
                    model.flush();
                }
                Op::Pop => {
                    let got = k.pop_next().map(|(s, t, p)| (s, t.get(), p));
                    prop_assert_eq!(got, model.pop());
                }
            }
        }

        // Drain to quiescence: one final barrier, then the full remaining
        // sequence must match event for event.
        k.flush_mailbox();
        model.flush();
        loop {
            let got = k.pop_next().map(|(s, t, p)| (s, t.get(), p));
            let want = model.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(k.is_empty());
    }
}
