//! The Wasp-like microhypervisor: launch paths, pooling, invocation.
//!
//! "Our virtine microhypervisor runs as a user-space process ... using KVM
//! or Hyper-V ... with start-up overheads as low as 100 µs" (§IV-D). The
//! decisive comparison is against the legacy isolation mechanisms FaaS
//! platforms actually use — processes, containers, full VMs — whose
//! start-up paths carry orders of magnitude more baggage. Costs here are
//! calibrated to published measurements (fork/exec ≈ hundreds of µs;
//! container runtimes ≈ hundreds of ms; µVM boot ≈ 125 ms; virtine cold
//! start ≈ 100 µs; snapshot restore ≈ 10 µs).

use crate::bespoke::BespokeSpec;
use crate::context::{Virtine, VirtineOutcome};
use crate::extract::VirtineImage;
use interweave_core::machine::MachineConfig;
use interweave_core::telemetry::{Key, Layer, Sink, Span, SpanKind, Unit};
use interweave_core::time::{Cycles, MicroSeconds};
use interweave_core::FaultPlan;
use interweave_ir::types::Val;

const KEY_INVOCATIONS: Key = Key::new("virtines.invocations", Layer::Virtine, Unit::Count);
const KEY_COLD_STARTS: Key = Key::new("virtines.cold_starts", Layer::Virtine, Unit::Count);
const KEY_REUSES: Key = Key::new("virtines.reuses", Layer::Virtine, Unit::Count);
const KEY_RESTARTS: Key = Key::new("virtines.restarts", Layer::Virtine, Unit::Count);
const KEY_DETECTED: Key = Key::new("virtines.faults_detected", Layer::Virtine, Unit::Count);

/// How a function can be launched in isolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaunchPath {
    /// `fork`+`exec` of a helper process.
    Process,
    /// An OCI container (runc-style).
    Container,
    /// A full virtual machine with a general-purpose guest (µVM class).
    FullVm,
    /// A virtine booted from scratch.
    VirtineCold,
    /// A virtine restored from the snapshot pool.
    VirtineSnapshot,
    /// A bespoke context synthesized for the workload (§V-E).
    Bespoke(BespokeSpec),
}

impl LaunchPath {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            LaunchPath::Process => "process (fork+exec)",
            LaunchPath::Container => "container",
            LaunchPath::FullVm => "full VM",
            LaunchPath::VirtineCold => "virtine (cold)",
            LaunchPath::VirtineSnapshot => "virtine (snapshot)",
            LaunchPath::Bespoke(_) => "bespoke context",
        }
    }
}

/// Start-up cost decomposition in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StartupBreakdown {
    /// Kernel/hypervisor object creation (task, VM fd, vCPU).
    pub create_us: f64,
    /// Image/page setup (exec, layer mounts, kernel load, snapshot map).
    pub image_us: f64,
    /// Boot/initialization inside the context (dynamic linker, guest
    /// kernel, shim, feature setup).
    pub boot_us: f64,
}

impl StartupBreakdown {
    /// Total start-up latency.
    pub fn total(&self) -> MicroSeconds {
        MicroSeconds(self.create_us + self.image_us + self.boot_us)
    }

    /// Total in cycles on `mc`.
    pub fn total_cycles(&self, mc: &MachineConfig) -> Cycles {
        mc.freq.cycles_per_us(self.total().get())
    }
}

/// The start-up cost of a launch path.
pub fn startup(path: LaunchPath) -> StartupBreakdown {
    match path {
        LaunchPath::Process => StartupBreakdown {
            create_us: 60.0, // fork: mm copy, descriptor table
            image_us: 160.0, // execve: mapping, relocation
            boot_us: 90.0,   // ld.so + libc init
        },
        LaunchPath::Container => StartupBreakdown {
            create_us: 9_000.0, // runtime + cgroup/namespace setup
            image_us: 70_000.0, // layer mounts
            boot_us: 45_000.0,  // init inside
        },
        LaunchPath::FullVm => StartupBreakdown {
            create_us: 9_000.0, // VMM + device model
            image_us: 22_000.0, // kernel + initrd load
            boot_us: 95_000.0,  // guest kernel boot
        },
        LaunchPath::VirtineCold => StartupBreakdown {
            create_us: 38.0, // KVM VM + vCPU ioctls
            image_us: 24.0,  // map the tiny image
            boot_us: 38.0,   // 16→64-bit bring-up + shim
        },
        LaunchPath::VirtineSnapshot => StartupBreakdown {
            create_us: 4.0, // pooled VM, reset regs
            image_us: 5.0,  // CoW re-map of snapshot pages (baseline set)
            boot_us: 3.0,   // resume at the entry hook
        },
        LaunchPath::Bespoke(spec) => StartupBreakdown {
            create_us: 4.0,
            image_us: 2.0,
            boot_us: spec.setup_us().get(),
        },
    }
}

/// Pool statistics.
#[derive(Debug, Clone, Default)]
pub struct WaspStats {
    /// Cold boots performed.
    pub cold_starts: u64,
    /// Snapshot/pool reuses.
    pub reuses: u64,
    /// Invocations completed.
    pub invocations: u64,
    /// Snapshot restarts performed after a kill or fault
    /// ([`Wasp::invoke_recovering`]).
    pub restarts: u64,
    /// Injected kills that landed on a live guest and were detected as an
    /// abnormal exit by the hypervisor.
    pub faults_detected: u64,
}

/// Per-dirty-page cost of a copy-on-write snapshot restore, in
/// microseconds (unmap + re-map of a 4 KiB page).
pub const RESTORE_US_PER_DIRTY_PAGE: f64 = 0.4;

/// Start-up cost of restoring a pooled snapshot whose previous tenant
/// dirtied `dirty` pages: the baseline snapshot re-map plus one CoW
/// drop-and-remap per dirtied page. Shared by [`Wasp`] and the serving
/// plane's pool model so the two charge byte-identical restore costs.
pub fn snapshot_restore(dirty: u64) -> StartupBreakdown {
    let mut b = startup(LaunchPath::VirtineSnapshot);
    b.image_us += dirty as f64 * RESTORE_US_PER_DIRTY_PAGE;
    b
}

/// The microhypervisor: owns a context pool per image.
///
/// ```
/// use interweave_virtines::wasp::Wasp;
/// use interweave_virtines::extract::extract_one;
/// use interweave_core::machine::MachineConfig;
/// use interweave_ir::{programs, types::Val};
///
/// let fib = programs::fib(10);
/// let image = extract_one(&fib.module, fib.entry);
/// let mut wasp = Wasp::new(image, MachineConfig::xeon_server_2s());
/// let (outcome, cold) = wasp.invoke(&[Val::I(10)], u64::MAX / 4);
/// let (_, warm) = wasp.invoke(&[Val::I(10)], u64::MAX / 4);
/// assert!(warm < cold); // snapshot reuse beats the cold boot
/// # let _ = outcome;
/// ```
pub struct Wasp {
    mc: MachineConfig,
    pool: Vec<(Virtine, u64)>, // (context, dirty pages to restore)
    image: VirtineImage,
    /// Telemetry sink (off by default): invocation counters plus nested
    /// virtine-call / fault-recovery spans.
    sink: Sink,
    /// This hypervisor's running clock: cumulative invocation latency,
    /// advanced per call so spans get deterministic timestamps.
    clock: Cycles,
    /// Counters.
    pub stats: WaspStats,
}

impl Wasp {
    /// A hypervisor managing contexts for one image on `mc`.
    pub fn new(image: VirtineImage, mc: MachineConfig) -> Wasp {
        Wasp {
            mc,
            pool: Vec::new(),
            image,
            sink: Sink::off(),
            clock: Cycles::ZERO,
            stats: WaspStats::default(),
        }
    }

    /// Attach a telemetry sink: invocations, cold starts, pool reuses,
    /// restarts, and detected faults are counted, and (at `Level::Full`)
    /// each invocation becomes a `virtine` span — with a `fault` span
    /// enclosing every restart episode, so recovery shows up as properly
    /// nested intervals on the virtine track.
    pub fn set_telemetry(&mut self, sink: Sink) {
        self.sink = sink;
    }

    /// Invoke the virtine: reuse a pooled context when available, else cold
    /// boot. Returns the outcome and the total latency (start-up + guest
    /// execution) in cycles.
    pub fn invoke(&mut self, args: &[Val], budget: u64) -> (VirtineOutcome, Cycles) {
        self.invoke_with(args, budget, None)
    }

    fn invoke_with(
        &mut self,
        args: &[Val],
        budget: u64,
        kill_at: Option<u64>,
    ) -> (VirtineOutcome, Cycles) {
        let (mut ctx, start) = match self.pool.pop() {
            Some((mut v, dirty)) => {
                v.reset();
                self.stats.reuses += 1;
                self.sink.count_at(&KEY_REUSES, 0, 1, self.clock);
                // Restore cost scales with what the previous tenant
                // dirtied: each CoW'd page must be dropped and re-mapped.
                (v, snapshot_restore(dirty))
            }
            None => {
                self.stats.cold_starts += 1;
                self.sink.count_at(&KEY_COLD_STARTS, 0, 1, self.clock);
                (
                    Virtine::new(self.image.clone()),
                    startup(LaunchPath::VirtineCold),
                )
            }
        };
        let outcome = ctx.invoke_killable(args, budget, kill_at);
        let total = start.total_cycles(&self.mc) + Cycles(ctx.guest_cycles);
        // Faulted/killed contexts are torn down, clean ones return to the
        // pool (remembering their dirty footprint for the next restore).
        if matches!(outcome, VirtineOutcome::Returned(_)) {
            let dirty = ctx.dirty_pages();
            self.pool.push((ctx, dirty));
        }
        let seq = self.stats.invocations;
        self.stats.invocations += 1;
        let t_start = self.clock;
        self.clock += total;
        self.sink.count_at(&KEY_INVOCATIONS, 0, 1, self.clock);
        self.sink.span(Span {
            layer: Layer::Virtine,
            track: 0,
            id: seq,
            kind: SpanKind::VirtineCall,
            start: t_start,
            end: self.clock,
        });
        (outcome, total)
    }

    /// Invoke under a fault plan, restarting from snapshot on injected
    /// kills.
    ///
    /// Each attempt draws a potential kill point from `faults`
    /// ([`FaultPlan::virtine_kill_at`]); a kill that lands on a live guest
    /// destroys the context (it never returns to the pool — exactly the
    /// normal teardown path for faulted contexts) and the hypervisor
    /// restarts the call from a fresh or pooled context, up to
    /// `max_restarts` times. Returns the final outcome, the *total* latency
    /// across all attempts (wasted partial executions included), and the
    /// number of restarts performed. With a quiet plan this is byte-for-byte
    /// `invoke`.
    pub fn invoke_recovering(
        &mut self,
        args: &[Val],
        budget: u64,
        faults: &mut FaultPlan,
        max_restarts: u32,
    ) -> (VirtineOutcome, Cycles, u32) {
        let t0 = self.clock;
        let first_seq = self.stats.invocations;
        let mut total = Cycles(0);
        let mut restarts = 0u32;
        let outcome = loop {
            let kill_at = faults.virtine_kill_at(budget);
            let (outcome, t) = self.invoke_with(args, budget, kill_at);
            total += t;
            if kill_at.is_some() && outcome == VirtineOutcome::Killed {
                self.stats.faults_detected += 1;
                self.sink.count_at(&KEY_DETECTED, 0, 1, self.clock);
            }
            match outcome {
                VirtineOutcome::Returned(_) => break outcome,
                _ if restarts < max_restarts => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.sink.count_at(&KEY_RESTARTS, 0, 1, self.clock);
                }
                _ => break outcome,
            }
        };
        if restarts > 0 {
            // The whole recovery episode — the failed attempts plus the one
            // that finally returned — as one enclosing span, so the
            // per-attempt virtine spans nest inside it.
            self.sink.span(Span {
                layer: Layer::Virtine,
                track: 0,
                id: first_seq,
                kind: SpanKind::FaultRecovery,
                start: t0,
                end: self.clock,
            });
        }
        (outcome, total, restarts)
    }

    /// Pre-warm the pool with `n` contexts (FaaS keep-warm policy).
    pub fn prewarm(&mut self, n: usize) {
        for _ in 0..n {
            self.pool.push((Virtine::new(self.image.clone()), 0));
            self.stats.cold_starts += 1;
            self.sink.count_at(&KEY_COLD_STARTS, 0, 1, self.clock);
        }
    }

    /// Pool size.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bespoke::synthesize;
    use crate::extract::extract_virtines;
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Module};

    fn fib_image() -> VirtineImage {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("fib", 1);
        fb.virtine();
        let n = fb.param(0);
        let two = fb.const_i(2);
        let c = fb.cmp(CmpOp::Lt, n, two);
        let base = fb.new_block();
        let rec = fb.new_block();
        fb.cond_br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n));
        fb.switch_to(rec);
        let one = fb.const_i(1);
        let n1 = fb.bin(BinOp::Sub, n, one);
        let n2 = fb.bin(BinOp::Sub, n, two);
        let f = interweave_ir::FuncId(0);
        let a = fb.call(f, &[n1]);
        let b = fb.call(f, &[n2]);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        m.add(fb.finish());
        extract_virtines(&m).remove(0)
    }

    #[test]
    fn virtine_cold_start_is_about_100us() {
        // §IV-D: "start-up overheads as low as 100 µs".
        let t = startup(LaunchPath::VirtineCold).total().get();
        assert!((80.0..=130.0).contains(&t), "cold start {t} µs");
    }

    #[test]
    fn legacy_paths_are_orders_of_magnitude_slower() {
        let virtine = startup(LaunchPath::VirtineCold).total().get();
        let process = startup(LaunchPath::Process).total().get();
        let container = startup(LaunchPath::Container).total().get();
        let vm = startup(LaunchPath::FullVm).total().get();
        assert!(process > 2.0 * virtine);
        assert!(container > 100.0 * virtine);
        assert!(vm > 100.0 * virtine);
    }

    #[test]
    fn snapshot_and_bespoke_beat_cold_start() {
        let cold = startup(LaunchPath::VirtineCold).total().get();
        let snap = startup(LaunchPath::VirtineSnapshot).total().get();
        assert!(snap < cold / 5.0);
        let img = fib_image();
        let spec = synthesize(&img.module);
        let bespoke = startup(LaunchPath::Bespoke(spec)).total().get();
        assert!(bespoke < snap + 5.0, "bespoke {bespoke} vs snapshot {snap}");
    }

    #[test]
    fn pool_reuse_kicks_in_after_first_invocation() {
        let mut w = Wasp::new(fib_image(), MachineConfig::xeon_server_2s());
        let (o1, t1) = w.invoke(&[Val::I(10)], u64::MAX / 4);
        assert_eq!(o1, VirtineOutcome::Returned(Some(Val::I(55))));
        let (o2, t2) = w.invoke(&[Val::I(10)], u64::MAX / 4);
        assert_eq!(o2, VirtineOutcome::Returned(Some(Val::I(55))));
        assert_eq!(w.stats.cold_starts, 1);
        assert_eq!(w.stats.reuses, 1);
        assert!(t2 < t1, "warm {t2} should beat cold {t1}");
    }

    #[test]
    fn restore_cost_scales_with_previous_tenants_dirty_footprint() {
        use interweave_ir::programs;
        let mc = MachineConfig::xeon_server_2s();
        // Memory-light tenant: fib dirties ~nothing.
        let fib = programs::fib(10);
        let mut w_light = Wasp::new(extract_one_image(&fib), mc.clone());
        let (_, _) = w_light.invoke(&[Val::I(10)], u64::MAX / 4);
        let (_, warm_light) = w_light.invoke(&[Val::I(10)], u64::MAX / 4);

        // Memory-heavy tenant: histogram dirties many pages.
        let hist = programs::histogram(4_000, 512);
        let mut w_heavy = Wasp::new(extract_one_image(&hist), mc.clone());
        let (_, _) = w_heavy.invoke(&hist.args, u64::MAX / 4);
        let (_, warm_heavy_total) = w_heavy.invoke(&hist.args, u64::MAX / 4);

        // Compare restore shares (subtract guest execution).
        let light_guest = {
            let mut v = crate::context::Virtine::new(extract_one_image(&fib));
            v.invoke(&[Val::I(10)], u64::MAX / 4);
            v.guest_cycles
        };
        let heavy_guest = {
            let mut v = crate::context::Virtine::new(extract_one_image(&hist));
            v.invoke(&hist.args, u64::MAX / 4);
            v.guest_cycles
        };
        let base = startup(LaunchPath::VirtineSnapshot).total_cycles(&mc).get();
        let light_delta = (warm_light.get() - light_guest).saturating_sub(base);
        let heavy_delta = (warm_heavy_total.get() - heavy_guest).saturating_sub(base);
        assert!(
            heavy_delta > 4 * light_delta.max(1),
            "dirty-page restore deltas: heavy {heavy_delta} vs light {light_delta}"
        );
    }

    fn extract_one_image(p: &interweave_ir::programs::Program) -> VirtineImage {
        crate::extract::extract_one(&p.module, p.entry)
    }

    #[test]
    fn faulted_contexts_are_not_pooled() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("wild", 0);
        fb.virtine();
        let bogus = fb.const_i(0xbad);
        let _ = fb.load(bogus, 0);
        fb.ret(None);
        m.add(fb.finish());
        let img = extract_virtines(&m).remove(0);
        let mut w = Wasp::new(img, MachineConfig::xeon_server_2s());
        let (o, _) = w.invoke(&[], u64::MAX / 4);
        assert!(matches!(o, VirtineOutcome::Faulted(_)));
        assert_eq!(w.pooled(), 0, "a faulted context must be destroyed");
    }

    #[test]
    fn injected_kills_are_detected_and_recovered_by_restart() {
        use interweave_core::{FaultConfig, FaultPlan};
        // Calibrate a budget tight enough that a uniform kill point has a
        // real chance of landing mid-execution.
        let mut probe = Virtine::new(fib_image());
        probe.invoke(&[Val::I(12)], u64::MAX / 4);
        // ~1.3x the guest's runtime: a uniform kill point lands mid-run
        // roughly 3 times in 4, so a short request batch sees several.
        let budget = probe.guest_cycles + probe.guest_cycles / 3;

        let serve = |seed: u64| {
            let mut faults = FaultPlan::new(FaultConfig {
                virtine_kill: 1.0,
                ..FaultConfig::quiet(seed)
            });
            let mut w = Wasp::new(fib_image(), MachineConfig::xeon_server_2s());
            let mut total = Cycles(0);
            let mut restarts = 0u32;
            for _ in 0..10 {
                let (outcome, t, r) = w.invoke_recovering(&[Val::I(12)], budget, &mut faults, 64);
                assert_eq!(outcome, VirtineOutcome::Returned(Some(Val::I(144))));
                total += t;
                restarts += r;
            }
            (w.stats.restarts, w.stats.faults_detected, total, restarts)
        };

        let (s_restarts, s_detected, total, restarts) = serve(42);
        assert!(restarts > 0, "p=1.0 kills over 10 requests must land");
        assert_eq!(s_restarts, restarts as u64);
        assert_eq!(
            s_detected, restarts as u64,
            "every restart here is a detected injected kill"
        );
        assert!(total.get() > 0);

        // Same seed, fresh state: byte-identical recovery story.
        assert_eq!(serve(42), (s_restarts, s_detected, total, restarts));
    }

    #[test]
    fn telemetry_spans_nest_restarts_inside_recovery_episodes() {
        use interweave_core::telemetry::{well_bracketed, Level, Sink, SpanKind};
        use interweave_core::{FaultConfig, FaultPlan};
        let mut probe = Virtine::new(fib_image());
        probe.invoke(&[Val::I(12)], u64::MAX / 4);
        let budget = probe.guest_cycles + probe.guest_cycles / 3;

        let mut faults = FaultPlan::new(FaultConfig {
            virtine_kill: 1.0,
            ..FaultConfig::quiet(42)
        });
        let mut w = Wasp::new(fib_image(), MachineConfig::xeon_server_2s());
        let sink = Sink::on(Level::Full);
        w.set_telemetry(sink.clone());
        for _ in 0..10 {
            let (outcome, _, _) = w.invoke_recovering(&[Val::I(12)], budget, &mut faults, 64);
            assert_eq!(outcome, VirtineOutcome::Returned(Some(Val::I(144))));
        }
        assert_eq!(sink.counter("virtines.invocations"), w.stats.invocations);
        assert_eq!(sink.counter("virtines.restarts"), w.stats.restarts);
        assert_eq!(
            sink.counter("virtines.faults_detected"),
            w.stats.faults_detected
        );
        assert_eq!(sink.counter("virtines.cold_starts"), w.stats.cold_starts);
        assert_eq!(sink.counter("virtines.reuses"), w.stats.reuses);
        let spans = sink.spans();
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::FaultRecovery),
            "p=1 kills must produce recovery episodes"
        );
        assert!(
            well_bracketed(&spans).is_none(),
            "attempt spans must nest inside recovery spans"
        );
    }

    #[test]
    fn quiet_plan_recovering_matches_plain_invoke() {
        use interweave_core::FaultPlan;
        let mut w = Wasp::new(fib_image(), MachineConfig::xeon_server_2s());
        let (plain, t_plain) = w.invoke(&[Val::I(10)], u64::MAX / 4);

        let mut faults = FaultPlan::quiet(7);
        let mut w2 = Wasp::new(fib_image(), MachineConfig::xeon_server_2s());
        let (o, t, restarts) = w2.invoke_recovering(&[Val::I(10)], u64::MAX / 4, &mut faults, 8);
        assert_eq!(o, plain);
        assert_eq!(t, t_plain);
        assert_eq!(restarts, 0);
        assert_eq!(w2.stats.faults_detected, 0);
        assert_eq!(faults.total_injected(), 0, "quiet plan draws nothing");
    }

    #[test]
    fn prewarm_avoids_cold_start_latency() {
        let mut w = Wasp::new(fib_image(), MachineConfig::xeon_server_2s());
        w.prewarm(2);
        let cold_starts_before = w.stats.cold_starts;
        let (_, t) = w.invoke(&[Val::I(5)], u64::MAX / 4);
        assert_eq!(w.stats.cold_starts, cold_starts_before);
        // Warm latency bound: snapshot restore + tiny fib.
        let bound = startup(LaunchPath::VirtineSnapshot)
            .total_cycles(&MachineConfig::xeon_server_2s())
            + Cycles(10_000);
        assert!(t < bound, "warm invoke {t} vs bound {bound}");
    }
}
