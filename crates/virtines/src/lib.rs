//! # interweave-virtines
//!
//! Virtines: function-granularity virtualization (§IV-D of the paper), and
//! bespoke execution contexts (§V-E).
//!
//! "Programmers write code as shown in Figure 5, and the compiler and
//! runtime cooperate to run that function in its own, isolated virtual
//! machine with start-up overheads as low as 100 µs." The pieces:
//!
//! - [`extract`]: the compiler support — outline a `virtine`-annotated
//!   function (and its transitive callees) into a self-contained module,
//!   the unit that boots inside the isolated context.
//! - [`wasp`]: the Wasp-like microhypervisor — launch-path cost models
//!   (process, container, full VM, cold virtine, snapshotted virtine,
//!   bespoke context), a context pool with snapshot reuse, and invocation.
//! - [`context`]: isolated execution — each virtine runs in its own
//!   interpreter memory; host state is unreachable by construction, and
//!   virtine traps do not propagate.
//! - [`bespoke`]: §V-E's synthesized runtime environments — compile-time
//!   analysis decides which machine features (FP, I/O, heap, long mode) the
//!   context must set up, and the cost model charges only those.
//! - [`echo`]: a FaaS-style echo service under Poisson load — the latency
//!   distributions an operator would provision against.
//! - [`serve`]: the open-loop serving plane — a sharded request-serving
//!   simulation over a calibrated pool model, with admission control,
//!   bounded retry + backoff, watchdog reclaim of lost completion kicks,
//!   and a per-class fault ledger (injected == recovered + shed +
//!   absorbed).

#![warn(missing_docs)]

pub mod bespoke;
pub mod context;
pub mod echo;
pub mod extract;
pub mod serve;
pub mod wasp;

pub use bespoke::BespokeSpec;
pub use context::Virtine;
pub use serve::{
    run_serve, FaultAccount, PoolOptions, PoolStats, RetryPolicy, ServeConfig, ServeError,
    ServeReport, Served, ServiceProfile, WaspPool,
};
pub use wasp::{LaunchPath, StartupBreakdown, Wasp};
