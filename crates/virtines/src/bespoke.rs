//! Bespoke execution contexts (§V-E): synthesized runtime environments.
//!
//! "Bespoke contexts eliminate unnecessary overheads and carry little
//! 'runtime baggage.' ... A piece of code which leverages only integer math
//! need not have the OS layer set up the floating point unit ... we may
//! even leave the machine in 16-bit mode as it boots up for certain simple
//! services. The key is that these contexts are constructed at compile
//! time." [`synthesize`] is that compile-time construction: static analysis
//! of the image decides exactly which features the context must set up.

use interweave_core::time::MicroSeconds;
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::Module;

/// What a context must provide, feature by feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BespokeSpec {
    /// FP/vector unit initialization (XCR0, MXCSR, lazy-save plumbing).
    pub needs_fp: bool,
    /// A heap allocator in the runtime shim.
    pub needs_heap: bool,
    /// Device/IO plumbing (ports, a virtio queue).
    pub needs_io: bool,
    /// 64-bit long mode (page tables, GDT); pure-integer, small-memory
    /// services can stay in 16/32-bit mode.
    pub needs_long_mode: bool,
}

impl BespokeSpec {
    /// The everything-on context (what a general-purpose unikernel sets up
    /// regardless of need).
    pub fn full() -> BespokeSpec {
        BespokeSpec {
            needs_fp: true,
            needs_heap: true,
            needs_io: true,
            needs_long_mode: true,
        }
    }

    /// The minimal context: integer math only.
    pub fn minimal() -> BespokeSpec {
        BespokeSpec {
            needs_fp: false,
            needs_heap: false,
            needs_io: false,
            needs_long_mode: false,
        }
    }

    /// Setup cost of this context in microseconds: a base (vCPU entry +
    /// stub runtime) plus each selected feature's cost. Calibrated so the
    /// full set lands near the classic minimal-unikernel boot and the
    /// minimal set is a few µs.
    pub fn setup_us(&self) -> MicroSeconds {
        let mut us = 3.0; // enter guest, zero state, call the function
        if self.needs_long_mode {
            us += 9.0; // page tables + GDT + mode switches
        }
        if self.needs_fp {
            us += 6.0; // xsave area + control registers
        }
        if self.needs_heap {
            us += 7.0; // allocator arena setup
        }
        if self.needs_io {
            us += 17.0; // virtio queue negotiation
        }
        MicroSeconds(us)
    }
}

/// Compile-time synthesis: inspect the image and require only what its
/// code can actually exercise.
pub fn synthesize(image: &Module) -> BespokeSpec {
    let mut spec = BespokeSpec::minimal();
    let mut mem_words = 0u64;
    for f in &image.funcs {
        if f.touches_fp() {
            spec.needs_fp = true;
        }
        for b in &f.blocks {
            for i in &b.insts {
                match i {
                    Inst::Alloc(_, _) => {
                        spec.needs_heap = true;
                        mem_words += 1;
                    }
                    Inst::Intr(_, Intrinsic::PollDevices, _) => spec.needs_io = true,
                    Inst::Load(_, _, _) | Inst::Store(_, _, _) => mem_words += 1,
                    _ => {}
                }
            }
        }
    }
    // Long mode is needed for a heap (arbitrary addresses) or any
    // non-trivial memory footprint; register-only integer code can stay in
    // real/protected mode.
    spec.needs_long_mode = spec.needs_heap || mem_words > 0;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::programs;

    #[test]
    fn fib_needs_almost_nothing() {
        // Fig. 5's example: pure integer recursion.
        let p = programs::fib(10);
        let spec = synthesize(&p.module);
        assert_eq!(spec, BespokeSpec::minimal());
        assert!(spec.setup_us().get() < 5.0);
    }

    #[test]
    fn fp_kernels_require_the_fpu() {
        let p = programs::stream_triad(8);
        let spec = synthesize(&p.module);
        assert!(spec.needs_fp);
        assert!(spec.needs_heap);
        assert!(spec.needs_long_mode);
        assert!(!spec.needs_io);
    }

    #[test]
    fn integer_memory_code_skips_fp_but_needs_long_mode() {
        let p = programs::histogram(64, 8);
        let spec = synthesize(&p.module);
        assert!(!spec.needs_fp);
        assert!(spec.needs_heap);
        assert!(spec.needs_long_mode);
    }

    #[test]
    fn costs_are_monotone_in_features() {
        assert!(BespokeSpec::minimal().setup_us().get() < BespokeSpec::full().setup_us().get());
        let mut mid = BespokeSpec::minimal();
        mid.needs_fp = true;
        assert!(mid.setup_us().get() > BespokeSpec::minimal().setup_us().get());
        assert!(mid.setup_us().get() < BespokeSpec::full().setup_us().get());
    }

    #[test]
    fn synthesized_never_exceeds_full() {
        for p in programs::suite(1) {
            let spec = synthesize(&p.module);
            assert!(spec.setup_us().get() <= BespokeSpec::full().setup_us().get());
        }
    }
}
