//! An echo-service latency study: virtines under load.
//!
//! §IV-D motivates virtines with FaaS-style services. This experiment
//! drives a single-worker event loop with a Poisson request stream; each
//! request runs a handler function in an isolated context. Compared
//! configurations: cold-start per request (no pooling), a Wasp snapshot
//! pool, and a process-per-request baseline — reporting the latency
//! distribution (mean / p99), which is what a service operator actually
//! provisions against.

use crate::extract::VirtineImage;
use crate::wasp::{startup, LaunchPath, Wasp};
use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stats::{Histogram, Summary};
use interweave_core::time::Cycles;
use interweave_ir::types::Val;

/// Isolation strategy for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// fork+exec a helper process per request.
    ProcessPerRequest,
    /// Boot a fresh virtine per request (no pool).
    VirtineCold,
    /// Wasp pool with snapshot reuse.
    VirtinePooled,
}

impl ServeMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::ProcessPerRequest => "process/request",
            ServeMode::VirtineCold => "virtine (cold)",
            ServeMode::VirtinePooled => "virtine (pooled)",
        }
    }
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct EchoConfig {
    /// Requests to serve.
    pub requests: usize,
    /// Mean inter-arrival gap in µs (Poisson).
    pub mean_gap_us: f64,
    /// Handler argument (controls execution time).
    pub handler_arg: i64,
    /// Seed for arrivals.
    pub seed: u64,
}

impl Default for EchoConfig {
    fn default() -> EchoConfig {
        EchoConfig {
            requests: 200,
            mean_gap_us: 150.0,
            handler_arg: 12,
            seed: 31,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct EchoReport {
    /// Serving strategy.
    pub mode: ServeMode,
    /// Requests served.
    pub served: usize,
    /// End-to-end latency distribution in µs (arrival → response).
    pub latency_us: Summary,
    /// Approximate p99 latency in µs. When `p99_clamped` is set this is
    /// only a lower bound: the rank landed past the histogram's tracked
    /// range and the value is the last finite bucket edge.
    pub p99_us: f64,
    /// True when the p99 rank overflowed the histogram range; tables must
    /// then print the value as a bound and surface `tail_overflow`.
    pub p99_clamped: bool,
    /// Fraction of requests whose latency overflowed the tracked range.
    pub tail_overflow: f64,
    /// Cold starts performed.
    pub cold_starts: u64,
}

/// Serve the request stream under one strategy.
pub fn run_echo(
    image: &VirtineImage,
    mc: &MachineConfig,
    cfg: &EchoConfig,
    mode: ServeMode,
) -> EchoReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let freq = mc.freq;

    // Per-request service time (start-up + execution) in cycles.
    let mut wasp = Wasp::new(image.clone(), mc.clone());
    if mode == ServeMode::VirtinePooled {
        wasp.prewarm(1);
    }
    let mut service = |mode: ServeMode| -> Cycles {
        match mode {
            ServeMode::ProcessPerRequest => {
                // Process start + the same computation natively.
                let mut v = crate::context::Virtine::new(image.clone());
                let _ = v.invoke(&[Val::I(cfg.handler_arg)], u64::MAX / 4);
                startup(LaunchPath::Process).total_cycles(mc) + Cycles(v.guest_cycles)
            }
            ServeMode::VirtineCold => {
                let mut v = crate::context::Virtine::new(image.clone());
                let _ = v.invoke(&[Val::I(cfg.handler_arg)], u64::MAX / 4);
                startup(LaunchPath::VirtineCold).total_cycles(mc) + Cycles(v.guest_cycles)
            }
            ServeMode::VirtinePooled => {
                let (_, cost) = wasp.invoke(&[Val::I(cfg.handler_arg)], u64::MAX / 4);
                cost
            }
        }
    };

    // Single-worker queueing: requests arrive Poisson; the worker serves
    // FIFO; latency = wait + service.
    let mut arrive = 0f64; // µs
    let mut free_at = Cycles::ZERO;
    let mut latency = Summary::new();
    let mut hist = Histogram::new(10.0, 40_000); // 10 µs buckets
    for _ in 0..cfg.requests {
        arrive += rng.exponential(cfg.mean_gap_us);
        let arrive_cyc = freq.cycles_per_us(arrive);
        let start = arrive_cyc.max(free_at);
        let cost = service(mode);
        free_at = start + cost;
        let lat_us = freq.us(free_at - arrive_cyc).get();
        latency.add(lat_us);
        hist.add(lat_us);
    }

    let (p99_us, p99_clamped) = hist.percentile_clamped(99.0).unwrap_or((0.0, false));
    EchoReport {
        mode,
        served: cfg.requests,
        p99_us,
        p99_clamped,
        tail_overflow: hist.overflow_fraction(),
        latency_us: latency,
        cold_starts: match mode {
            ServeMode::VirtinePooled => wasp.stats.cold_starts,
            _ => cfg.requests as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_one;
    use interweave_ir::programs;

    fn setup() -> (VirtineImage, MachineConfig, EchoConfig) {
        let fib = programs::fib(12);
        (
            extract_one(&fib.module, fib.entry),
            MachineConfig::xeon_server_2s(),
            EchoConfig::default(),
        )
    }

    #[test]
    fn pooled_virtines_beat_cold_on_mean_and_tail() {
        let (img, mc, cfg) = setup();
        let cold = run_echo(&img, &mc, &cfg, ServeMode::VirtineCold);
        let pooled = run_echo(&img, &mc, &cfg, ServeMode::VirtinePooled);
        assert!(pooled.latency_us.mean() < cold.latency_us.mean());
        assert!(pooled.p99_us <= cold.p99_us);
        assert!(
            pooled.cold_starts <= 2,
            "pool should reuse: {}",
            pooled.cold_starts
        );
    }

    #[test]
    fn cold_virtines_beat_processes() {
        let (img, mc, cfg) = setup();
        let proc = run_echo(&img, &mc, &cfg, ServeMode::ProcessPerRequest);
        let cold = run_echo(&img, &mc, &cfg, ServeMode::VirtineCold);
        assert!(
            cold.latency_us.mean() < proc.latency_us.mean(),
            "virtine {:.1}µs vs process {:.1}µs",
            cold.latency_us.mean(),
            proc.latency_us.mean()
        );
    }

    #[test]
    fn overload_shows_up_in_the_tail() {
        // Arrivals faster than the process path can serve → queueing blows
        // the tail; pooled virtines absorb the same load.
        let (img, mc, mut cfg) = setup();
        cfg.mean_gap_us = 120.0;
        let proc = run_echo(&img, &mc, &cfg, ServeMode::ProcessPerRequest);
        let pooled = run_echo(&img, &mc, &cfg, ServeMode::VirtinePooled);
        assert!(
            proc.p99_us > 3.0 * pooled.p99_us,
            "process p99 {:.0}µs vs pooled {:.0}µs",
            proc.p99_us,
            pooled.p99_us
        );
    }

    #[test]
    fn p99_within_the_histogram_range_is_not_clamped() {
        // The echo histogram tracks 400 ms; every strategy's tail sits in
        // the low milliseconds, so the report must never claim a clamp —
        // the golden tables print the plain value.
        let (img, mc, cfg) = setup();
        for mode in [
            ServeMode::ProcessPerRequest,
            ServeMode::VirtineCold,
            ServeMode::VirtinePooled,
        ] {
            let r = run_echo(&img, &mc, &cfg, mode);
            assert!(!r.p99_clamped, "{}: p99 claimed a clamp", mode.name());
            assert_eq!(r.tail_overflow, 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (img, mc, cfg) = setup();
        let a = run_echo(&img, &mc, &cfg, ServeMode::VirtinePooled);
        let b = run_echo(&img, &mc, &cfg, ServeMode::VirtinePooled);
        assert_eq!(a.latency_us.count(), b.latency_us.count());
        assert!((a.latency_us.mean() - b.latency_us.mean()).abs() < 1e-9);
    }
}
