//! Virtine extraction: outline an annotated function into a self-contained
//! module.
//!
//! Fig. 5's `virtine int fib(int n)` compiles to (a) a host-side stub that
//! asks the hypervisor to launch the function and (b) a standalone image
//! containing the function and everything it transitively calls. This pass
//! produces (b): a fresh [`Module`] whose function ids are remapped so the
//! virtine entry is function 0. Host and virtine share *nothing* — the
//! isolation argument is structural.

use interweave_ir::inst::Inst;
use interweave_ir::types::FuncId;
use interweave_ir::Module;
use std::collections::BTreeMap;

/// One extracted virtine image.
#[derive(Debug, Clone)]
pub struct VirtineImage {
    /// The annotated entry function's name.
    pub name: String,
    /// The self-contained module; entry is `FuncId(0)`.
    pub module: Module,
}

impl VirtineImage {
    /// Serialize the image in the IR text format (shippable artifact: the
    /// host can store/attest images as text and rehydrate at launch).
    pub fn to_text(&self) -> String {
        format!(
            "; virtine image: {}\n{}",
            self.name,
            interweave_ir::text::print_module(&self.module)
        )
    }

    /// Rehydrate an image from its text form.
    pub fn from_text(src: &str) -> Result<VirtineImage, interweave_ir::text::ParseError> {
        let module = interweave_ir::text::parse_module(src)?;
        let name = module
            .funcs
            .first()
            .map(|f| f.name.clone())
            .unwrap_or_default();
        Ok(VirtineImage { name, module })
    }
}

/// Extract every `virtine`-annotated function in `m` into its own image.
pub fn extract_virtines(m: &Module) -> Vec<VirtineImage> {
    m.virtine_funcs()
        .into_iter()
        .map(|f| extract_one(m, f))
        .collect()
}

/// Extract a single function (plus transitive callees) as an image.
pub fn extract_one(m: &Module, entry: FuncId) -> VirtineImage {
    // Transitive closure of callees, deterministic order (BFS).
    let mut order: Vec<FuncId> = vec![entry];
    let mut seen: BTreeMap<FuncId, FuncId> = BTreeMap::new();
    seen.insert(entry, FuncId(0));
    let mut at = 0;
    while at < order.len() {
        let f = order[at];
        at += 1;
        for b in &m.func(f).blocks {
            for i in &b.insts {
                if let Inst::Call(_, g, _) = i {
                    if !seen.contains_key(g) {
                        seen.insert(*g, FuncId(order.len() as u32));
                        order.push(*g);
                    }
                }
            }
        }
    }

    // Copy functions with remapped call targets.
    let mut out = Module::new();
    for &f in &order {
        let mut func = m.func(f).clone();
        for b in &mut func.blocks {
            for i in &mut b.insts {
                if let Inst::Call(_, g, _) = i {
                    *g = seen[g];
                }
            }
        }
        // Inside the image the annotation has done its job.
        func.is_virtine = false;
        out.add(func);
    }
    VirtineImage {
        name: m.func(entry).name.clone(),
        module: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::interp::{Interp, InterpConfig, NullHooks};
    use interweave_ir::types::Val;
    use interweave_ir::verify::assert_valid;
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder};

    /// Host module: main calls helper; fib is virtine-annotated and calls
    /// helper too.
    fn host_module() -> Module {
        let mut m = Module::new();
        // f0: helper(x) = x + 1
        let mut fb = FunctionBuilder::new("helper", 1);
        let x = fb.param(0);
        let one = fb.const_i(1);
        let r = fb.bin(BinOp::Add, x, one);
        fb.ret(Some(r));
        let helper = m.add(fb.finish());

        // f1: virtine fib(n) = n<2 ? helper(n)-1 : fib(n-1)+fib(n-2)
        let mut fb = FunctionBuilder::new("fib", 1);
        fb.virtine();
        let n = fb.param(0);
        let two = fb.const_i(2);
        let c = fb.cmp(CmpOp::Lt, n, two);
        let base = fb.new_block();
        let rec = fb.new_block();
        fb.cond_br(c, base, rec);
        fb.switch_to(base);
        let h = fb.call(helper, &[n]);
        let one = fb.const_i(1);
        let r = fb.bin(BinOp::Sub, h, one);
        fb.ret(Some(r));
        fb.switch_to(rec);
        let one2 = fb.const_i(1);
        let n1 = fb.bin(BinOp::Sub, n, one2);
        let n2 = fb.bin(BinOp::Sub, n, two);
        let fib = FuncId(1); // self
        let a = fb.call(fib, &[n1]);
        let b = fb.call(fib, &[n2]);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        m.add(fb.finish());

        // f2: main — not part of any virtine image.
        let mut fb = FunctionBuilder::new("main", 0);
        let z = fb.const_i(0);
        fb.ret(Some(z));
        m.add(fb.finish());
        m
    }

    #[test]
    fn extracts_entry_and_transitive_callees_only() {
        let m = host_module();
        let images = extract_virtines(&m);
        assert_eq!(images.len(), 1);
        let img = &images[0];
        assert_eq!(img.name, "fib");
        // fib + helper, but not main.
        assert_eq!(img.module.funcs.len(), 2);
        assert!(img.module.by_name("main").is_none());
        assert_valid(&img.module);
    }

    #[test]
    fn extracted_image_runs_standalone_with_correct_semantics() {
        let m = host_module();
        let img = &extract_virtines(&m)[0];
        let mut it = Interp::new(InterpConfig::default());
        it.start(&img.module, FuncId(0), &[Val::I(10)]);
        let v = it.run_to_completion(&img.module, &mut NullHooks);
        // fib(n) with base case helper(n)-1 = n: ordinary fib. fib(10)=55.
        assert_eq!(v, Some(Val::I(55)));
    }

    #[test]
    fn recursion_remaps_to_image_local_ids() {
        let m = host_module();
        let img = &extract_virtines(&m)[0];
        // Entry must be id 0 and self-calls must target 0.
        let entry = img.module.func(FuncId(0));
        assert_eq!(entry.name, "fib");
        let mut self_calls = 0;
        for b in &entry.blocks {
            for i in &b.insts {
                if let Inst::Call(_, g, _) = i {
                    if img.module.func(*g).name == "fib" {
                        assert_eq!(*g, FuncId(0));
                        self_calls += 1;
                    }
                }
            }
        }
        assert_eq!(self_calls, 2);
    }

    #[test]
    fn images_round_trip_through_text() {
        let m = host_module();
        let img = &extract_virtines(&m)[0];
        let text = img.to_text();
        let back = VirtineImage::from_text(&text).expect("parses");
        assert_eq!(back.module, img.module);
        assert_eq!(back.name, img.name);
        // The rehydrated image still executes.
        let mut it = Interp::new(InterpConfig::default());
        it.start(&back.module, FuncId(0), &[Val::I(8)]);
        assert_eq!(
            it.run_to_completion(&back.module, &mut NullHooks),
            Some(Val::I(21))
        );
    }

    #[test]
    fn module_without_virtines_yields_no_images() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("plain", 0);
        fb.ret(None);
        m.add(fb.finish());
        assert!(extract_virtines(&m).is_empty());
    }
}
