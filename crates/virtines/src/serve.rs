//! The open-loop serving plane: virtine request serving under chaos.
//!
//! ROADMAP item 1 asks for the datacenter-scale version of the §IV-D
//! virtine story: a FaaS operator does not invoke a virtine once, they
//! serve millions of requests against a pool of them, and the number that
//! matters is the *tail* of the latency distribution as offered load
//! approaches and passes saturation — with the fault plane turned on. This
//! module provides that simulation:
//!
//! - [`WaspPool`]: a calibrated pool model of [`Wasp`](crate::wasp::Wasp).
//!   One real [`Virtine`] run measures the service profile (guest cycles,
//!   dirty pages, outcome); every subsequent request is charged
//!   arithmetically from the profile and the shared launch-path cost
//!   tables, so a million-invocation sweep costs microseconds of host time
//!   instead of re-running the interpreter per request. A differential
//!   test pins the quiet path byte-identical to the real `Wasp`.
//! - [`WaspPool::invoke_recovering`]: bounded retry with exponential
//!   backoff + deterministic jitter ([`RetryPolicy`]) on top of the
//!   snapshot-restart recovery `Wasp` performs; exhaustion surfaces as the
//!   typed [`ServeError::RetriesExhausted`] instead of looping.
//! - [`run_serve`]: the sharded open-loop server. A global arrival stream
//!   ([`ArrivalGen`]) is dealt round-robin to a fixed set of logical
//!   workers; each worker is an independent FIFO queue with admission
//!   control (queue-depth cap + predicted-wait deadline shedding) over its
//!   own `WaspPool` and its own per-worker [`FaultPlan`] stream. Lost
//!   completion kicks are reclaimed at the kernel watchdog's next scan
//!   ([`WatchdogPolicy::next_scan_after`]) — the executor's actual
//!   recovery schedule, not a copy of it.
//!
//! **Determinism and shard invariance.** Every worker's simulation is a
//! pure function of `(profile, config, worker index, its arrival slice)`:
//! per-worker RNG streams are derived from the config seed and the worker
//! index, never from execution order. `--shards` only chooses how worker
//! simulations are grouped onto host threads; reports are merged in worker
//! index order regardless, so the result is bit-identical at every shard
//! count — the property the CI gate byte-compares.
//!
//! **Fault accounting.** Every injected fault must land somewhere. Per
//! class, the invariant `injected == recovered + shed + absorbed` holds
//! ([`FaultAccount::balanced`], asserted after every run): a virtine kill
//! is *recovered* when its request eventually returns, *shed* when the
//! retry budget exhausts, and *absorbed* when the kill lands after the
//! guest already finished; a lost completion kick is always *recovered*
//! by the watchdog scan (at a latency cost); a snapshot-cache OOM is
//! *recovered* by falling back to a cold boot when it evicted a cached
//! snapshot, and *absorbed* when the cache was already empty.

use crate::context::{Virtine, VirtineOutcome};
use crate::extract::VirtineImage;
use crate::wasp::{snapshot_restore, startup, LaunchPath};
use interweave_core::arrivals::{ArrivalGen, ArrivalKind};
use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stats::{Samples, Sketch};
use interweave_core::telemetry::{FlightRecorder, TimeSeries};
use interweave_core::time::Cycles;
use interweave_core::{FaultClass, FaultConfig, FaultPlan};
use interweave_ir::types::Val;
use interweave_kernel::watchdog::WatchdogPolicy;
use std::collections::VecDeque;

/// Bounded-retry schedule: exponential backoff with deterministic jitter.
///
/// Attempt `k` (0-based) that fails waits `nominal(k) + jitter` before the
/// next try, where `nominal(k) = min(base · 2^k, cap)` — monotone
/// non-decreasing — and the jitter is uniform in `[0, nominal·jitter_frac]`
/// drawn from a seeded per-worker stream (decorrelates retry storms without
/// breaking determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Cycles,
    /// Backoff ceiling.
    pub cap: Cycles,
    /// Jitter as a fraction of the nominal backoff, in `[0, 1]`.
    pub jitter_frac: f64,
}

impl RetryPolicy {
    /// Nominal (jitter-free) backoff after failed attempt `attempt`:
    /// doubles from `base`, saturating at `cap`.
    pub fn nominal(&self, attempt: u32) -> Cycles {
        let mult = 1u64 << attempt.min(63);
        Cycles(self.base.get().saturating_mul(mult).min(self.cap.get()))
    }

    /// The actual backoff for failed attempt `attempt`: nominal plus a
    /// jittered share drawn from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Cycles {
        let n = self.nominal(attempt).get();
        let spread = (n as f64 * self.jitter_frac) as u64;
        let j = if spread > 0 { rng.below(spread + 1) } else { 0 };
        Cycles(n + j)
    }
}

/// Typed failure of a served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The retry budget is exhausted: every attempt was killed or faulted.
    RetriesExhausted {
        /// Attempts performed (== the policy's `max_attempts`).
        attempts: u32,
        /// Cycles the worker burned across all attempts and backoffs —
        /// the request failed but its cost was real.
        spent: Cycles,
        /// Injected kills that landed on a live guest along the way.
        kills: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::RetriesExhausted {
                attempts,
                spent,
                kills,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts ({kills} kills, {spent} cycles spent)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// One successfully served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// Service latency on the worker: every attempt plus every backoff.
    pub latency: Cycles,
    /// Attempts performed (1 = no retries).
    pub attempts: u32,
    /// Injected kills that landed on a live guest and were recovered by
    /// restart.
    pub kills: u32,
    /// Injected kills that landed after the guest finished (no effect).
    pub absorbed: u32,
}

/// The calibrated cost profile of one virtine service: what a single real
/// execution measured, reused arithmetically for every modelled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceProfile {
    /// The calibration run returned normally.
    pub ok: bool,
    /// Guest execution cycles per request.
    pub guest_cycles: u64,
    /// Pages one request dirties (the next restore's CoW cost).
    pub dirty_pages: u64,
}

impl ServiceProfile {
    /// Measure the profile by one real isolated execution of `image` with
    /// `args` under `budget`.
    pub fn calibrate(image: &VirtineImage, args: &[Val], budget: u64) -> ServiceProfile {
        let mut v = Virtine::new(image.clone());
        let outcome = v.invoke(args, budget);
        ServiceProfile {
            ok: matches!(outcome, VirtineOutcome::Returned(_)),
            guest_cycles: v.guest_cycles,
            dirty_pages: v.dirty_pages(),
        }
    }
}

/// Pool/serving statistics, aggregated across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Attempts executed (every retry counts).
    pub invocations: u64,
    /// Cold boots (empty cache, incl. prewarm fills).
    pub cold_starts: u64,
    /// Snapshot reuses.
    pub reuses: u64,
    /// Restarts performed after a killed/faulted attempt.
    pub restarts: u64,
    /// Injected kills detected as abnormal exits.
    pub faults_detected: u64,
    /// Snapshot-cache OOM evictions (AllocFail landed on a cached
    /// snapshot; the next request pays a cold start — that's the recovery).
    pub oom_evictions: u64,
    /// AllocFail draws that found the cache already empty (absorbed).
    pub oom_misses: u64,
    /// Cycles spent waiting in retry backoff.
    pub backoff_cycles: u64,
}

impl PoolStats {
    fn absorb(&mut self, o: &PoolStats) {
        self.invocations += o.invocations;
        self.cold_starts += o.cold_starts;
        self.reuses += o.reuses;
        self.restarts += o.restarts;
        self.faults_detected += o.faults_detected;
        self.oom_evictions += o.oom_evictions;
        self.oom_misses += o.oom_misses;
        self.backoff_cycles += o.backoff_cycles;
    }
}

/// Pool knobs for one worker's [`WaspPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolOptions {
    /// Maximum snapshots kept warm. Zero models the layered stack's
    /// no-snapshot path: every request cold boots (~100 µs).
    pub cache_capacity: usize,
    /// Contexts pre-booted before serving (FaaS keep-warm).
    pub prewarm: usize,
    /// Retry schedule on killed/faulted attempts.
    pub retry: RetryPolicy,
}

/// A calibrated serving pool: the [`Wasp`](crate::wasp::Wasp) cost model
/// applied per request from a [`ServiceProfile`] instead of re-running the
/// interpreter, with bounded-capacity snapshot caching and bounded retry.
///
/// Cost fidelity: a cold attempt costs the cold launch path plus the
/// profiled guest cycles; a warm attempt costs the snapshot restore for
/// the cached footprint plus guest cycles — the exact arithmetic `Wasp`
/// performs (shared [`snapshot_restore`] helper), which the quiet-path
/// differential test pins. A killed attempt is charged exactly its kill
/// point `k` cycles of guest time (the model's definition of "killed `k`
/// cycles in"); faulted/killed contexts never re-enter the cache, exactly
/// the `Wasp` teardown rule.
#[derive(Debug, Clone)]
pub struct WaspPool {
    mc: MachineConfig,
    profile: ServiceProfile,
    opts: PoolOptions,
    /// Dirty footprints of cached snapshots (LIFO, like `Wasp`'s pool).
    cached: Vec<u64>,
    /// Jitter stream for retry backoff.
    backoff_rng: SplitMix64,
    /// Counters.
    pub stats: PoolStats,
}

impl WaspPool {
    /// A pool serving `profile` on `mc`, with the backoff jitter stream
    /// seeded by `backoff_seed`.
    pub fn new(
        profile: ServiceProfile,
        mc: MachineConfig,
        opts: PoolOptions,
        backoff_seed: u64,
    ) -> WaspPool {
        assert!(opts.retry.max_attempts >= 1, "at least one attempt");
        WaspPool {
            mc,
            profile,
            opts,
            cached: Vec::new(),
            backoff_rng: SplitMix64::new(backoff_seed),
            stats: PoolStats::default(),
        }
    }

    /// Pre-boot `n` contexts into the cache (dirty footprint 0, so their
    /// first restore is the baseline snapshot cost — `Wasp::prewarm`
    /// parity). Counts cold starts like the real pool. Capacity-bounded.
    pub fn prewarm(&mut self, n: usize) {
        for _ in 0..n.min(self.opts.cache_capacity) {
            self.cached.push(0);
            self.stats.cold_starts += 1;
        }
    }

    /// Snapshots currently cached.
    pub fn cached(&self) -> usize {
        self.cached.len()
    }

    /// One modelled attempt: returns (completed-ok, latency, kill landed,
    /// kill absorbed).
    fn attempt(&mut self, budget: u64, kill_at: Option<u64>) -> (bool, Cycles, bool, bool) {
        let start = match self.cached.pop() {
            Some(dirty) => {
                self.stats.reuses += 1;
                snapshot_restore(dirty)
            }
            None => {
                self.stats.cold_starts += 1;
                startup(LaunchPath::VirtineCold)
            }
        };
        self.stats.invocations += 1;
        // Fuel semantics mirror `Virtine::invoke_killable`: a kill point
        // inside the budget caps the fuel, and fuel exhaustion *is* the
        // kill.
        let fuel = match kill_at {
            Some(k) if k < budget => k,
            _ => budget,
        };
        let g = self.profile.guest_cycles;
        let finished = g <= fuel;
        let consumed = g.min(fuel);
        let ok = finished && self.profile.ok;
        let landed = kill_at.is_some() && !finished;
        let absorbed = kill_at.is_some() && finished;
        let latency = start.total_cycles(&self.mc) + Cycles(consumed);
        if ok && self.cached.len() < self.opts.cache_capacity {
            self.cached.push(self.profile.dirty_pages);
        }
        (ok, latency, landed, absorbed)
    }

    /// Serve one request under the fault plan: per attempt, draw a kill
    /// point ([`FaultPlan::virtine_kill_at`]); restart on kill/fault with
    /// the policy's backoff until the attempt budget exhausts. After a
    /// completion, an [`FaultClass::AllocFail`] draw models snapshot-cache
    /// memory pressure: it evicts one cached snapshot (forcing a later
    /// cold-start recovery) or is absorbed when the cache is empty.
    pub fn invoke_recovering(
        &mut self,
        budget: u64,
        faults: &mut FaultPlan,
    ) -> Result<Served, ServeError> {
        let mut total = Cycles::ZERO;
        let mut kills = 0u32;
        let mut absorbed = 0u32;
        for attempt in 0..self.opts.retry.max_attempts {
            let kill_at = faults.virtine_kill_at(budget);
            let (ok, t, landed, abs) = self.attempt(budget, kill_at);
            total += t;
            if landed {
                kills += 1;
                self.stats.faults_detected += 1;
            }
            if abs {
                absorbed += 1;
            }
            if ok {
                if faults.fail_alloc() {
                    if self.cached.pop().is_some() {
                        self.stats.oom_evictions += 1;
                    } else {
                        self.stats.oom_misses += 1;
                    }
                }
                return Ok(Served {
                    latency: total,
                    attempts: attempt + 1,
                    kills,
                    absorbed,
                });
            }
            if attempt + 1 < self.opts.retry.max_attempts {
                self.stats.restarts += 1;
                let wait = self.opts.retry.backoff(attempt, &mut self.backoff_rng);
                self.stats.backoff_cycles += wait.get();
                total += wait;
            }
        }
        Err(ServeError::RetriesExhausted {
            attempts: self.opts.retry.max_attempts,
            spent: total,
            kills,
        })
    }
}

/// How a serving run stores its latency distribution — the capacity policy
/// the million-invocation regime requires.
///
/// [`Samples`] keeps every observation (8 bytes each), so a 10⁶-invocation
/// campaign holds tens of megabytes just for tails; [`Sketch`] is
/// fixed-memory (≤ ~42 KiB per sink) at a documented ≤ 2⁻⁷ relative error.
/// `Windowed` additionally rolls per-window trajectories (goodput, queue
/// depth, latency quantiles) into a [`TimeSeries`], so the report shows
/// *when* the knee happened, not just that it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsPolicy {
    /// Exact quantiles, unbounded memory — the historical default; keeps
    /// every pinned golden byte-identical.
    #[default]
    Exact,
    /// Fixed-memory quantile sketch, no trajectory.
    Sketched,
    /// Fixed-memory sketch plus a windowed [`TimeSeries`] with windows of
    /// `window` simulated cycles.
    Windowed {
        /// Roll-up window width in simulated cycles.
        window: Cycles,
    },
}

/// The latency sink a [`ServeReport`] aggregates into: exact reservoir or
/// bounded sketch, chosen by [`MetricsPolicy`]. Merging two reports
/// requires the same variant — mixing an exact run into a sketched one
/// would silently change quantile semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencySink {
    /// Every observation retained ([`Samples`]).
    Exact(Samples),
    /// Fixed-memory log-bucketed sketch ([`Sketch`]).
    Sketched(Sketch),
}

impl LatencySink {
    fn for_policy(metrics: MetricsPolicy) -> LatencySink {
        match metrics {
            MetricsPolicy::Exact => LatencySink::Exact(Samples::new()),
            MetricsPolicy::Sketched | MetricsPolicy::Windowed { .. } => {
                LatencySink::Sketched(Sketch::for_latency_us())
            }
        }
    }

    /// Record one latency observation, µs.
    pub fn add(&mut self, x: f64) {
        match self {
            LatencySink::Exact(s) => s.add(x),
            LatencySink::Sketched(s) => s.add(x),
        }
    }

    /// Absorb another sink. Panics on variant mismatch.
    pub fn merge(&mut self, other: &LatencySink) {
        match (self, other) {
            (LatencySink::Exact(a), LatencySink::Exact(b)) => a.merge(b),
            (LatencySink::Sketched(a), LatencySink::Sketched(b)) => a.merge(b),
            _ => panic!("cannot merge exact and sketched latency sinks"),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        match self {
            LatencySink::Exact(s) => s.count(),
            LatencySink::Sketched(s) => s.count() as usize,
        }
    }

    /// Median; 0 when empty.
    pub fn p50(&mut self) -> f64 {
        match self {
            LatencySink::Exact(s) => s.p50(),
            LatencySink::Sketched(s) => s.p50(),
        }
    }

    /// 99th percentile; 0 when empty.
    pub fn p99(&mut self) -> f64 {
        match self {
            LatencySink::Exact(s) => s.p99(),
            LatencySink::Sketched(s) => s.p99(),
        }
    }

    /// 99.9th percentile; 0 when empty.
    pub fn p999(&mut self) -> f64 {
        match self {
            LatencySink::Exact(s) => s.p999(),
            LatencySink::Sketched(s) => s.p999(),
        }
    }

    /// Heap bytes held: unbounded for `Exact`, hard-capped for
    /// `Sketched` — the EXPERIMENTS.md memory table reads this.
    pub fn bytes(&self) -> usize {
        match self {
            LatencySink::Exact(s) => s.bytes(),
            LatencySink::Sketched(s) => s.bytes(),
        }
    }
}

/// Per-class fault ledger: where every injected fault of one class landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAccount {
    /// The class this row accounts for.
    pub class: FaultClass,
    /// Faults the plan injected.
    pub injected: u64,
    /// Recovered by a mechanism one layer up (restart, watchdog scan,
    /// cold-start fallback) — the request still succeeded.
    pub recovered: u64,
    /// Turned into load shedding: the fault exhausted its recovery budget
    /// and the request was dropped (accounted, not lost).
    pub shed: u64,
    /// Landed where they could do no harm (dead context, empty cache).
    pub absorbed: u64,
}

impl FaultAccount {
    /// The accounting invariant: every injection is recovered, shed, or
    /// absorbed — nothing vanishes.
    pub fn balanced(&self) -> bool {
        self.injected == self.recovered + self.shed + self.absorbed
    }
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Arrival process shape.
    pub arrival: ArrivalKind,
    /// Global mean inter-arrival gap at the offered load, µs.
    pub mean_gap_us: f64,
    /// Run duration, µs.
    pub duration_us: f64,
    /// Seed for arrivals and all per-worker streams.
    pub seed: u64,
    /// Logical workers (fixed — shard-count independent).
    pub workers: usize,
    /// Admission cap on per-worker in-flight requests (incl. in service).
    pub queue_cap: usize,
    /// Admission deadline: shed when the predicted queueing wait exceeds
    /// this, µs.
    pub deadline_slack_us: f64,
    /// Guest fuel budget per attempt.
    pub budget: u64,
    /// Per-worker pool knobs (cache capacity, prewarm, retry schedule).
    pub pool: PoolOptions,
    /// Chaos knob: per-class injection rates (per-worker streams are
    /// derived from this config's seed and the worker index).
    pub faults: FaultConfig,
    /// Watchdog schedule reclaiming lost completion kicks.
    pub watchdog: WatchdogPolicy,
    /// Latency-sink capacity policy (exact reservoir, bounded sketch, or
    /// sketch + windowed time series).
    pub metrics: MetricsPolicy,
    /// Per-worker flight-recorder depth: 0 (default) disables the
    /// blackbox; N keeps each worker's last N events for the ledger
    /// assertion's failure dump.
    pub blackbox: usize,
}

/// The merged result of a serving run. `PartialEq` holds bit-exactly, so
/// shard-invariance and double-run determinism are testable as `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests served successfully (the goodput numerator).
    pub completed: u64,
    /// Shed at admission: queue depth at cap.
    pub shed_queue: u64,
    /// Shed at admission: predicted wait past the deadline.
    pub shed_deadline: u64,
    /// Admitted but failed: retry budget exhausted under kills.
    pub shed_retry: u64,
    /// Completions whose kick was lost and reclaimed by a watchdog scan.
    pub wd_reclaims: u64,
    /// End-to-end latency (arrival → observed completion) of successfully
    /// served requests, µs — exact or sketched per [`MetricsPolicy`].
    pub latency_us: LatencySink,
    /// Windowed trajectories (offered/completed/shed counters, queue-depth
    /// gauge, latency sketch per window), present under
    /// [`MetricsPolicy::Windowed`]. Merged window-by-window in canonical
    /// worker order, so it is bit-identical at every shard count.
    pub series: Option<TimeSeries>,
    /// Per-class fault ledger, in [`FaultClass::ALL`] order.
    pub faults: Vec<FaultAccount>,
    /// Aggregated pool counters.
    pub pool: PoolStats,
}

impl ServeReport {
    /// Fraction of offered requests served successfully.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Total requests shed (admission + retry exhaustion).
    pub fn shed(&self) -> u64 {
        self.shed_queue + self.shed_deadline + self.shed_retry
    }

    /// The ledger row for `class`.
    pub fn account(&self, class: FaultClass) -> &FaultAccount {
        &self.faults[FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("ALL covers every class")]
    }

    /// True when every class's ledger balances (`injected == recovered +
    /// shed + absorbed`).
    pub fn accounts_balanced(&self) -> bool {
        self.faults.iter().all(FaultAccount::balanced)
    }

    fn absorb(&mut self, o: &ServeReport) {
        self.offered += o.offered;
        self.admitted += o.admitted;
        self.completed += o.completed;
        self.shed_queue += o.shed_queue;
        self.shed_deadline += o.shed_deadline;
        self.shed_retry += o.shed_retry;
        self.wd_reclaims += o.wd_reclaims;
        self.latency_us.merge(&o.latency_us);
        if let (Some(mine), Some(theirs)) = (self.series.as_mut(), o.series.as_ref()) {
            mine.merge(theirs);
        }
        for (a, b) in self.faults.iter_mut().zip(&o.faults) {
            a.injected += b.injected;
            a.recovered += b.recovered;
            a.shed += b.shed;
            a.absorbed += b.absorbed;
        }
        self.pool.absorb(&o.pool);
    }

    fn empty(metrics: MetricsPolicy) -> ServeReport {
        ServeReport {
            offered: 0,
            admitted: 0,
            completed: 0,
            shed_queue: 0,
            shed_deadline: 0,
            shed_retry: 0,
            wd_reclaims: 0,
            latency_us: LatencySink::for_policy(metrics),
            series: match metrics {
                MetricsPolicy::Windowed { window } => Some(TimeSeries::new(window)),
                _ => None,
            },
            faults: FaultClass::ALL
                .iter()
                .map(|&class| FaultAccount {
                    class,
                    injected: 0,
                    recovered: 0,
                    shed: 0,
                    absorbed: 0,
                })
                .collect(),
            pool: PoolStats::default(),
        }
    }
}

/// Decorrelation salt for per-worker streams: worker `w`'s fault and
/// backoff seeds are derived from the config seed and `w`, never from
/// execution order — the heart of the shard-invariance argument.
fn worker_salt(w: usize) -> u64 {
    (w as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// Simulate one worker over its arrival slice. Pure function of its
/// arguments; no shared mutable state.
fn simulate_worker(
    w: usize,
    arrivals: &[f64],
    profile: ServiceProfile,
    mc: &MachineConfig,
    cfg: &ServeConfig,
) -> ServeReport {
    let freq = mc.freq;
    let mut r = ServeReport::empty(cfg.metrics);
    // The worker's blackbox: last `cfg.blackbox` admission/shed/reclaim
    // events, dumped if the ledger assertion below ever fires.
    let mut bb = (cfg.blackbox > 0).then(|| FlightRecorder::new(cfg.blackbox));
    let mut pool = WaspPool::new(
        profile,
        mc.clone(),
        cfg.pool,
        cfg.seed ^ worker_salt(w) ^ 0x5851_F42D_4C95_7F2D,
    );
    pool.prewarm(cfg.pool.prewarm);
    let mut faults = FaultPlan::new(FaultConfig {
        seed: cfg.faults.seed ^ worker_salt(w),
        ..cfg.faults
    });
    // Finish times of admitted, not-yet-finished requests (FIFO, single
    // server per worker: front finishes first).
    let mut fifo: VecDeque<Cycles> = VecDeque::new();
    let deadline = freq.cycles_per_us(cfg.deadline_slack_us);
    let idx = |class: FaultClass| {
        FaultClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("ALL covers every class")
    };
    let (vk, li, af) = (
        idx(FaultClass::VirtineKill),
        idx(FaultClass::LostIpi),
        idx(FaultClass::AllocFail),
    );

    for &t_us in arrivals {
        r.offered += 1;
        let t = freq.cycles_per_us(t_us);
        while fifo.front().is_some_and(|&f| f <= t) {
            fifo.pop_front();
        }
        if let Some(s) = r.series.as_mut() {
            s.add(t, "offered", 1);
            s.gauge_max(t, "queue_depth", fifo.len() as u64);
        }
        // Admission control, two gates: bound the queue, then bound the
        // wait. Both shed *before* any service cost is spent.
        if fifo.len() >= cfg.queue_cap {
            r.shed_queue += 1;
            if let Some(s) = r.series.as_mut() {
                s.add(t, "shed", 1);
            }
            if let Some(b) = bb.as_mut() {
                b.record(t, w, "shed-queue", fifo.len() as u64, 0);
            }
            continue;
        }
        let start = fifo.back().copied().unwrap_or(Cycles::ZERO).max(t);
        if start - t > deadline {
            r.shed_deadline += 1;
            if let Some(s) = r.series.as_mut() {
                s.add(t, "shed", 1);
            }
            if let Some(b) = bb.as_mut() {
                b.record(t, w, "shed-deadline", (start - t).get(), deadline.get());
            }
            continue;
        }
        r.admitted += 1;
        match pool.invoke_recovering(cfg.budget, &mut faults) {
            Ok(served) => {
                let finish = start + served.latency;
                // The worker is free at the true finish; the *client*
                // observes the completion kick, which the chaos plane may
                // drop — then the response waits for the next watchdog
                // scan to notice and re-deliver it.
                let observed = if faults.drop_kick() {
                    r.wd_reclaims += 1;
                    r.faults[li].recovered += 1;
                    let reclaimed = cfg.watchdog.next_scan_after(finish);
                    if let Some(b) = bb.as_mut() {
                        b.record(t, w, "wd-reclaim", finish.get(), reclaimed.get());
                    }
                    reclaimed
                } else {
                    finish
                };
                fifo.push_back(finish);
                r.completed += 1;
                let lat_us = freq.us(observed - t).get();
                r.latency_us.add(lat_us);
                if let Some(s) = r.series.as_mut() {
                    s.add(t, "completed", 1);
                    s.observe(t, "latency_us", lat_us);
                }
                r.faults[vk].recovered += served.kills as u64;
                r.faults[vk].absorbed += served.absorbed as u64;
            }
            Err(ServeError::RetriesExhausted { spent, kills, .. }) => {
                // The request failed but its cost was real: the worker
                // stays busy for everything the attempts burned.
                fifo.push_back(start + spent);
                r.shed_retry += 1;
                if let Some(s) = r.series.as_mut() {
                    s.add(t, "shed", 1);
                }
                if let Some(b) = bb.as_mut() {
                    b.record(t, w, "shed-retry", kills as u64, spent.get());
                }
                r.faults[vk].shed += kills as u64;
            }
        }
    }
    for (i, &class) in FaultClass::ALL.iter().enumerate() {
        r.faults[i].injected = faults.injected(class);
    }
    r.faults[af].recovered = pool.stats.oom_evictions;
    r.faults[af].absorbed = pool.stats.oom_misses;
    r.pool = pool.stats;
    if !r.accounts_balanced() {
        // The flight-recorder payoff: the panic carries the worker's last
        // N events, deterministically, instead of "re-run and pray".
        let dump = bb
            .as_ref()
            .map(|b| b.dump(&format!("worker {w} ledger imbalance")))
            .unwrap_or_default();
        panic!(
            "worker {w} fault ledger out of balance: {:?}\n{dump}",
            r.faults
        );
    }
    r
}

/// Run the open-loop serving simulation: calibrate the service profile
/// with one real execution, deal the global arrival stream round-robin to
/// `cfg.workers` independent FIFO workers, simulate them on `shards` host
/// threads (contiguous worker groups), and merge reports in worker index
/// order — bit-identical at every `shards` value.
pub fn run_serve(
    image: &VirtineImage,
    args: &[Val],
    mc: &MachineConfig,
    cfg: &ServeConfig,
    shards: usize,
) -> ServeReport {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.queue_cap >= 1, "queue cap must admit at least one");
    let profile = ServiceProfile::calibrate(image, args, cfg.budget);
    assert!(
        profile.ok && profile.guest_cycles < cfg.budget,
        "budget must cover the calibrated service time"
    );

    // One global arrival stream (the offered load), dealt round-robin so
    // every worker sees the same long-run arrival shape.
    let mut slices: Vec<Vec<f64>> = vec![Vec::new(); cfg.workers];
    for (i, t) in
        ArrivalGen::new(cfg.arrival, cfg.mean_gap_us, cfg.duration_us, cfg.seed).enumerate()
    {
        slices[i % cfg.workers].push(t);
    }

    let shards = shards.clamp(1, cfg.workers);
    let group_of = |w: usize| w * shards / cfg.workers;
    let mut reports: Vec<Option<ServeReport>> = vec![None; cfg.workers];
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..shards)
            .map(|g| {
                let slices = &slices;
                s.spawn(move || {
                    (0..cfg.workers)
                        .filter(|&w| group_of(w) == g)
                        .map(|w| (w, simulate_worker(w, &slices[w], profile, mc, cfg)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (w, rep) in h.join().expect("worker group panicked") {
                reports[w] = Some(rep);
            }
        }
    });

    let mut merged = ServeReport::empty(cfg.metrics);
    for rep in reports.into_iter().flatten() {
        merged.absorb(&rep);
    }
    assert!(
        merged.accounts_balanced(),
        "merged fault ledger out of balance"
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_virtines;
    use crate::wasp::Wasp;
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Module};

    fn fib_image() -> VirtineImage {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("fib", 1);
        fb.virtine();
        let n = fb.param(0);
        let two = fb.const_i(2);
        let c = fb.cmp(CmpOp::Lt, n, two);
        let base = fb.new_block();
        let rec = fb.new_block();
        fb.cond_br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n));
        fb.switch_to(rec);
        let one = fb.const_i(1);
        let n1 = fb.bin(BinOp::Sub, n, one);
        let n2 = fb.bin(BinOp::Sub, n, two);
        let f = interweave_ir::FuncId(0);
        let a = fb.call(f, &[n1]);
        let b = fb.call(f, &[n2]);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        m.add(fb.finish());
        extract_virtines(&m).remove(0)
    }

    fn retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: Cycles(2_000),
            cap: Cycles(16_000),
            jitter_frac: 0.25,
        }
    }

    fn pool_opts(cache: usize) -> PoolOptions {
        PoolOptions {
            cache_capacity: cache,
            prewarm: 0,
            retry: retry(),
        }
    }

    fn serve_cfg(image: &VirtineImage, mean_gap_us: f64, faults: FaultConfig) -> ServeConfig {
        // A kill budget ~1.3× the calibrated service time, so injected
        // kill points (uniform in the budget) land mid-run ~3 times in 4.
        let profile = ServiceProfile::calibrate(image, &[Val::I(10)], u64::MAX / 4);
        ServeConfig {
            arrival: ArrivalKind::Poisson,
            mean_gap_us,
            duration_us: 60_000.0,
            seed: 0x5EED,
            workers: 6,
            queue_cap: 8,
            deadline_slack_us: 400.0,
            budget: profile.guest_cycles + profile.guest_cycles / 3 + 2,
            pool: pool_opts(64),
            faults,
            watchdog: WatchdogPolicy::new(Cycles(100_000)),
            metrics: MetricsPolicy::Exact,
            blackbox: 0,
        }
    }

    #[test]
    fn retry_nominal_schedule_is_monotone_and_capped() {
        let r = retry();
        let mut prev = Cycles::ZERO;
        for k in 0..12 {
            let n = r.nominal(k);
            assert!(n >= prev, "nominal backoff must not shrink");
            assert!(n <= r.cap);
            prev = n;
        }
        assert_eq!(r.nominal(0), Cycles(2_000));
        assert_eq!(r.nominal(1), Cycles(4_000));
        assert_eq!(r.nominal(3), Cycles(16_000));
        assert_eq!(r.nominal(10), Cycles(16_000), "saturates at cap");
    }

    #[test]
    fn retry_jitter_is_bounded_and_deterministic() {
        let r = retry();
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for k in 0..8 {
            let x = r.backoff(k, &mut a);
            assert_eq!(x, r.backoff(k, &mut b), "same stream, same jitter");
            let n = r.nominal(k).get() as f64;
            assert!(x.get() as f64 >= n && x.get() as f64 <= n * (1.0 + r.jitter_frac) + 1.0);
        }
    }

    #[test]
    fn quiet_pool_is_byte_identical_to_real_wasp() {
        // The memoized pool must charge exactly what the real
        // microhypervisor charges on the no-fault path: same outcomes,
        // same cycle totals, same cold/reuse accounting.
        let image = fib_image();
        let args = [Val::I(12)];
        let budget = u64::MAX / 4;
        let mc = MachineConfig::xeon_server_2s();

        let mut wasp = Wasp::new(image.clone(), mc.clone());
        let mut quiet = FaultPlan::quiet(3);
        let real: Vec<Cycles> = (0..12)
            .map(|_| {
                let (o, t, r) = wasp.invoke_recovering(&args, budget, &mut quiet, 4);
                assert!(matches!(o, VirtineOutcome::Returned(_)));
                assert_eq!(r, 0);
                t
            })
            .collect();

        let profile = ServiceProfile::calibrate(&image, &args, budget);
        let mut pool = WaspPool::new(profile, mc, pool_opts(1024), 7);
        let mut quiet = FaultPlan::quiet(3);
        let modelled: Vec<Cycles> = (0..12)
            .map(|_| {
                pool.invoke_recovering(budget, &mut quiet)
                    .expect("quiet path cannot fail")
                    .latency
            })
            .collect();

        assert_eq!(modelled, real, "pool model must not drift from Wasp");
        assert_eq!(pool.stats.cold_starts, wasp.stats.cold_starts);
        assert_eq!(pool.stats.reuses, wasp.stats.reuses);
        assert_eq!(pool.stats.invocations, wasp.stats.invocations);
        assert_eq!(pool.stats.restarts, 0);
    }

    #[test]
    fn prewarm_parity_with_real_wasp() {
        let image = fib_image();
        let args = [Val::I(10)];
        let budget = u64::MAX / 4;
        let mc = MachineConfig::xeon_server_2s();

        let mut wasp = Wasp::new(image.clone(), mc.clone());
        wasp.prewarm(2);
        let (_, real) = wasp.invoke(&args, budget);

        let profile = ServiceProfile::calibrate(&image, &args, budget);
        let mut pool = WaspPool::new(profile, mc, pool_opts(1024), 7);
        pool.prewarm(2);
        let mut quiet = FaultPlan::quiet(5);
        let served = pool.invoke_recovering(budget, &mut quiet).unwrap();
        assert_eq!(served.latency, real);
        assert_eq!(pool.stats.cold_starts, wasp.stats.cold_starts);
    }

    #[test]
    fn retry_exhaustion_surfaces_a_typed_error_with_bounded_attempts() {
        let image = fib_image();
        let args = [Val::I(12)];
        let mc = MachineConfig::xeon_server_2s();
        let profile = ServiceProfile::calibrate(&image, &args, u64::MAX / 4);
        // Kill every attempt: p=1 with a budget the guest can never beat
        // is not constructible (kill points land in [1, budget-1]); use
        // p=1.0 and a budget barely above the service time so nearly all
        // kill points land mid-run — then hunt a seed where all 4 land.
        let budget = profile.guest_cycles + 2;
        let mut seed = 0u64;
        let err = loop {
            let mut faults = FaultPlan::new(FaultConfig {
                virtine_kill: 1.0,
                ..FaultConfig::quiet(seed)
            });
            let mut pool = WaspPool::new(profile, mc.clone(), pool_opts(64), 11);
            match pool.invoke_recovering(budget, &mut faults) {
                Err(e) => {
                    assert_eq!(pool.stats.invocations, 4, "attempts are bounded");
                    assert_eq!(pool.stats.restarts, 3, "backoff between attempts only");
                    assert!(pool.stats.backoff_cycles > 0);
                    break e;
                }
                Ok(_) => seed += 1,
            }
        };
        let ServeError::RetriesExhausted {
            attempts,
            spent,
            kills,
        } = err;
        assert_eq!(attempts, 4);
        assert_eq!(kills, 4, "every attempt was a landed kill");
        assert!(spent > Cycles::ZERO, "failed work still costs");
        let msg = err.to_string();
        assert!(msg.contains("retries exhausted"), "{msg}");
    }

    #[test]
    fn backoff_waits_follow_the_monotone_nominal_schedule() {
        // Reconstruct the expected waits from the policy and the same
        // seeded jitter stream the pool uses.
        let image = fib_image();
        let args = [Val::I(12)];
        let mc = MachineConfig::xeon_server_2s();
        let profile = ServiceProfile::calibrate(&image, &args, u64::MAX / 4);
        let budget = profile.guest_cycles + 2;
        // Find a seed where all attempts die (as above).
        let mut seed = 0u64;
        let (total_backoff, backoff_seed) = loop {
            let mut faults = FaultPlan::new(FaultConfig {
                virtine_kill: 1.0,
                ..FaultConfig::quiet(seed)
            });
            let mut pool = WaspPool::new(profile, mc.clone(), pool_opts(64), 11);
            if pool.invoke_recovering(budget, &mut faults).is_err() {
                break (pool.stats.backoff_cycles, 11);
            }
            seed += 1;
        };
        let r = retry();
        let mut rng = SplitMix64::new(backoff_seed);
        let expect: u64 = (0..3).map(|k| r.backoff(k, &mut rng).get()).sum();
        assert_eq!(total_backoff, expect);
    }

    #[test]
    fn cache_capacity_zero_always_cold_boots() {
        let image = fib_image();
        let args = [Val::I(10)];
        let budget = u64::MAX / 4;
        let mc = MachineConfig::xeon_server_2s();
        let profile = ServiceProfile::calibrate(&image, &args, budget);
        let mut pool = WaspPool::new(profile, mc, pool_opts(0), 7);
        let mut quiet = FaultPlan::quiet(5);
        let a = pool.invoke_recovering(budget, &mut quiet).unwrap().latency;
        let b = pool.invoke_recovering(budget, &mut quiet).unwrap().latency;
        assert_eq!(a, b, "no snapshot ever cached: every call cold");
        assert_eq!(pool.stats.cold_starts, 2);
        assert_eq!(pool.stats.reuses, 0);
    }

    fn chaotic(seed: u64) -> FaultConfig {
        FaultConfig {
            virtine_kill: 0.12,
            drop_ipi: 0.05,
            alloc_fail: 0.05,
            ..FaultConfig::quiet(seed)
        }
    }

    #[test]
    fn serve_report_is_shard_invariant_and_deterministic() {
        let image = fib_image();
        let args = [Val::I(10)];
        let mc = MachineConfig::xeon_server_2s();
        let cfg = serve_cfg(&image, 40.0, chaotic(0xC0FFEE));
        let one = run_serve(&image, &args, &mc, &cfg, 1);
        let three = run_serve(&image, &args, &mc, &cfg, 3);
        let six = run_serve(&image, &args, &mc, &cfg, 6);
        assert_eq!(one, three, "1 vs 3 shards must be bit-identical");
        assert_eq!(one, six, "1 vs 6 shards must be bit-identical");
        let again = run_serve(&image, &args, &mc, &cfg, 1);
        assert_eq!(one, again, "double run must be bit-identical");
        assert!(one.offered > 500, "the run must carry real load");
        assert!(one.completed > 0);
    }

    #[test]
    fn fault_ledger_balances_under_chaos() {
        let image = fib_image();
        let args = [Val::I(10)];
        let mc = MachineConfig::xeon_server_2s();
        let r = run_serve(&image, &args, &mc, &serve_cfg(&image, 30.0, chaotic(77)), 2);
        assert!(r.accounts_balanced());
        let vk = r.account(FaultClass::VirtineKill);
        assert!(vk.injected > 0, "12% kills over this load must fire");
        assert!(vk.recovered > 0, "retries must rescue most kills");
        let li = r.account(FaultClass::LostIpi);
        assert_eq!(
            li.injected, li.recovered,
            "watchdog reclaims every lost kick"
        );
        assert_eq!(li.recovered, r.wd_reclaims);
        let af = r.account(FaultClass::AllocFail);
        assert_eq!(af.injected, af.recovered + af.absorbed);
        assert_eq!(af.shed, 0, "cache OOM never sheds a request directly");
    }

    #[test]
    fn overload_sheds_instead_of_collapsing() {
        let image = fib_image();
        let args = [Val::I(10)];
        let mc = MachineConfig::xeon_server_2s();
        // Well under saturation: nothing shed at admission.
        let calm = run_serve(&image, &args, &mc, &serve_cfg(&image, 200.0, chaotic(5)), 2);
        // Far past saturation: admission control must engage. Warm service
        // is ~14 µs/request/worker, so a 1 µs global gap over 6 workers is
        // well past the knee.
        let slam = run_serve(&image, &args, &mc, &serve_cfg(&image, 1.0, chaotic(5)), 2);
        assert_eq!(
            calm.shed_queue + calm.shed_deadline,
            0,
            "calm load admits all"
        );
        assert!(
            slam.shed_queue + slam.shed_deadline > 0,
            "overload must shed at admission"
        );
        // Bounded tail for what *was* admitted: queue cap 8 bounds the
        // wait to ~cap × service time; check against a generous multiple.
        let mut slam = slam;
        let p99 = slam.latency_us.p99();
        assert!(
            p99 < 4_000.0,
            "p99 of admitted requests must stay bounded, got {p99} µs"
        );
        assert!(slam.goodput() < 0.95, "overload cannot serve everything");
        assert!(calm.goodput() > 0.95, "calm load serves nearly everything");
    }

    #[test]
    fn sketched_sink_tracks_exact_within_the_documented_bound() {
        let image = fib_image();
        let args = [Val::I(10)];
        let mc = MachineConfig::xeon_server_2s();
        let mut cfg = serve_cfg(&image, 40.0, chaotic(0xBEEF));
        let mut exact = run_serve(&image, &args, &mc, &cfg, 2);
        cfg.metrics = MetricsPolicy::Sketched;
        let mut sk = run_serve(&image, &args, &mc, &cfg, 2);
        // Same simulation either way: only the sink representation moves.
        assert_eq!(exact.completed, sk.completed);
        assert_eq!(exact.latency_us.count(), sk.latency_us.count());
        assert!(
            sk.latency_us.bytes() < exact.latency_us.bytes(),
            "sketch must be smaller: {} vs {}",
            sk.latency_us.bytes(),
            exact.latency_us.bytes()
        );
        let eps = 1.0 / 128.0; // Sketch::for_latency_us relative error
        for (e, v) in [
            (exact.latency_us.p50(), sk.latency_us.p50()),
            (exact.latency_us.p99(), sk.latency_us.p99()),
            (exact.latency_us.p999(), sk.latency_us.p999()),
        ] {
            assert!(
                e <= v && v <= e * (1.0 + eps) * (1.0 + 1e-12),
                "sketch quantile out of bound: exact {e}, sketch {v}"
            );
        }
    }

    #[test]
    fn windowed_series_is_shard_invariant_and_consistent_with_totals() {
        let image = fib_image();
        let args = [Val::I(10)];
        let mc = MachineConfig::xeon_server_2s();
        let mut cfg = serve_cfg(&image, 40.0, chaotic(0xC0FFEE));
        // ~10 windows over the 60 ms run at 3.3 GHz.
        cfg.metrics = MetricsPolicy::Windowed {
            window: Cycles(20_000_000),
        };
        cfg.blackbox = 32;
        let one = run_serve(&image, &args, &mc, &cfg, 1);
        let six = run_serve(&image, &args, &mc, &cfg, 6);
        assert_eq!(one, six, "windowed report must be shard-invariant");
        let series = one.series.as_ref().expect("windowed policy fills series");
        assert!(series.len() > 3, "the run must span several windows");
        let sum = |name: &str| -> u64 { series.iter().map(|(_, w)| w.counter(name)).sum() };
        assert_eq!(sum("offered"), one.offered, "windows partition arrivals");
        assert_eq!(sum("completed"), one.completed);
        assert_eq!(sum("shed"), one.shed());
        // Per-window latency sketches merge to the run-level sink.
        let mut merged = interweave_core::stats::Sketch::for_latency_us();
        for (_, w) in series.iter() {
            if let Some(s) = w.sketch("latency_us") {
                merged.merge(s);
            }
        }
        assert_eq!(
            LatencySink::Sketched(merged),
            one.latency_us,
            "window sketches must merge to the total"
        );
    }

    #[test]
    fn snapshot_cache_separates_interwoven_from_layered_tails() {
        let image = fib_image();
        let args = [Val::I(10)];
        let mc = MachineConfig::xeon_server_2s();
        let mut cfg = serve_cfg(&image, 60.0, FaultConfig::quiet(9));
        let mut warm = run_serve(&image, &args, &mc, &cfg, 2);
        cfg.pool.cache_capacity = 0; // the layered stack: no snapshots
        let mut cold = run_serve(&image, &args, &mc, &cfg, 2);
        assert!(
            cold.latency_us.p50() > warm.latency_us.p50() * 2.0,
            "cold-start storms must dominate the layered median: {} vs {}",
            cold.latency_us.p50(),
            warm.latency_us.p50()
        );
    }
}
