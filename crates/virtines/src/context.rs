//! Isolated virtine execution.
//!
//! A virtine owns its interpreter — and therefore its entire physical
//! memory. Isolation is structural: there is no operation by which code in
//! the image can name a host address (its `Memory` starts empty and its
//! module was extracted without host references), and a trap inside the
//! virtine surfaces as a value to the host, never as host state damage.

use crate::extract::VirtineImage;
use interweave_ir::interp::{ExecStatus, Interp, InterpConfig, NullHooks, Trap};
use interweave_ir::types::{FuncId, Val};

/// Outcome of one virtine invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum VirtineOutcome {
    /// The function returned.
    Returned(Option<Val>),
    /// The virtine trapped (isolated: the host observes the trap as data).
    Faulted(Trap),
    /// The execution budget was exhausted (runaway guest, killed).
    Killed,
}

/// One virtine instance: an image plus its private execution state.
pub struct Virtine {
    /// The self-contained image.
    pub image: VirtineImage,
    interp: Interp,
    /// Cycles consumed by guest execution so far.
    pub guest_cycles: u64,
}

impl Virtine {
    /// Instantiate a context for an image.
    pub fn new(image: VirtineImage) -> Virtine {
        Virtine {
            image,
            interp: Interp::new(InterpConfig::default()),
            guest_cycles: 0,
        }
    }

    /// Invoke the entry function with `args`, bounded by `budget` cycles.
    pub fn invoke(&mut self, args: &[Val], budget: u64) -> VirtineOutcome {
        self.interp.start(&self.image.module, FuncId(0), args);
        let status = self.interp.run(&self.image.module, &mut NullHooks, budget);
        self.guest_cycles = self.interp.stats.cycles;
        match status {
            ExecStatus::Done(v) => VirtineOutcome::Returned(v),
            ExecStatus::Trapped(t) => VirtineOutcome::Faulted(t),
            ExecStatus::OutOfFuel | ExecStatus::Yielded => VirtineOutcome::Killed,
        }
    }

    /// Invoke the entry function, with an optional injected kill point.
    ///
    /// `kill_at` models an asynchronous fault (host signal, hardware error,
    /// fault-injection campaign) that destroys the virtine `kill_at` cycles
    /// into the call. If the guest finishes before the kill point the fault
    /// lands on a dead context and the invocation returns normally; if it is
    /// still running, the host observes [`VirtineOutcome::Killed`] — exactly
    /// the signal the Wasp layer uses to tear down and restart from
    /// snapshot. A guest trap before the kill point still surfaces as
    /// [`VirtineOutcome::Faulted`].
    pub fn invoke_killable(
        &mut self,
        args: &[Val],
        budget: u64,
        kill_at: Option<u64>,
    ) -> VirtineOutcome {
        match kill_at {
            // Running with fuel capped at the kill point makes the fuel
            // exhaustion *be* the kill: the guest was live at that cycle.
            Some(k) if k < budget => self.invoke(args, k),
            _ => self.invoke(args, budget),
        }
    }

    /// Pages this invocation dirtied (what a copy-on-write snapshot restore
    /// must re-map): one 4 KiB page per 512 stored words, at least one page
    /// for the guest stack once anything ran.
    pub fn dirty_pages(&self) -> u64 {
        if self.interp.stats.insts == 0 {
            0
        } else {
            (self.interp.stats.stores * 8).div_ceil(4096).max(1)
        }
    }

    /// Reset guest state for pool reuse (the snapshot-restore fast path:
    /// memory is discarded, which is exactly what restoring a clean
    /// snapshot accomplishes).
    pub fn reset(&mut self) {
        self.interp = Interp::new(InterpConfig::default());
        self.guest_cycles = 0;
    }

    /// Live allocations inside the guest (post-run inspection).
    pub fn guest_allocations(&self) -> usize {
        self.interp.mem.n_allocs()
    }

    /// Backing pages the guest's memory actually materialized — the
    /// simulator-level footprint a snapshot restore discards. Unlike
    /// [`Virtine::dirty_pages`] (the modelled copy-on-write cost, derived
    /// from the store count), this observes the page-backed storage itself.
    pub fn resident_pages(&self) -> usize {
        self.interp.mem.resident_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_virtines;
    use interweave_ir::{BinOp, CmpOp, FunctionBuilder, Module};

    fn fib_image() -> VirtineImage {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("fib", 1);
        fb.virtine();
        let n = fb.param(0);
        let two = fb.const_i(2);
        let c = fb.cmp(CmpOp::Lt, n, two);
        let base = fb.new_block();
        let rec = fb.new_block();
        fb.cond_br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n));
        fb.switch_to(rec);
        let one = fb.const_i(1);
        let n1 = fb.bin(BinOp::Sub, n, one);
        let n2 = fb.bin(BinOp::Sub, n, two);
        let f = interweave_ir::FuncId(0);
        let a = fb.call(f, &[n1]);
        let b = fb.call(f, &[n2]);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        m.add(fb.finish());
        extract_virtines(&m).remove(0)
    }

    #[test]
    fn fib_virtine_returns_correctly() {
        let mut v = Virtine::new(fib_image());
        assert_eq!(
            v.invoke(&[Val::I(12)], u64::MAX / 4),
            VirtineOutcome::Returned(Some(Val::I(144)))
        );
        assert!(v.guest_cycles > 0);
    }

    #[test]
    fn guest_fault_is_contained() {
        // A wild access inside the guest surfaces as data to the host.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("wild", 0);
        fb.virtine();
        let bogus = fb.const_i(0xbad0_0000);
        let _ = fb.load(bogus, 0);
        fb.ret(None);
        m.add(fb.finish());
        let img = extract_virtines(&m).remove(0);
        let mut v = Virtine::new(img);
        match v.invoke(&[], u64::MAX / 4) {
            VirtineOutcome::Faulted(Trap::BadAccess { addr, .. }) => {
                assert_eq!(addr, 0xbad0_0000)
            }
            other => panic!("expected contained fault, got {other:?}"),
        }
        // The host (this test) is obviously still running; the virtine can
        // be reset and reused.
        v.reset();
        assert_eq!(v.guest_allocations(), 0);
    }

    #[test]
    fn runaway_guest_is_killed_by_budget() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("spin", 0);
        fb.virtine();
        let head = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        fb.br(head);
        m.add(fb.finish());
        let img = extract_virtines(&m).remove(0);
        let mut v = Virtine::new(img);
        assert_eq!(v.invoke(&[], 10_000), VirtineOutcome::Killed);
    }

    #[test]
    fn kill_point_only_lands_on_a_live_guest() {
        let mut v = Virtine::new(fib_image());
        // Establish how long the guest actually runs.
        assert_eq!(
            v.invoke(&[Val::I(12)], u64::MAX / 4),
            VirtineOutcome::Returned(Some(Val::I(144)))
        );
        let guest = v.guest_cycles;
        v.reset();
        // A kill point mid-execution destroys the context.
        assert_eq!(
            v.invoke_killable(&[Val::I(12)], u64::MAX / 4, Some(guest / 2)),
            VirtineOutcome::Killed
        );
        v.reset();
        // A kill point after completion lands on a dead context: no effect.
        assert_eq!(
            v.invoke_killable(&[Val::I(12)], u64::MAX / 4, Some(guest * 2)),
            VirtineOutcome::Returned(Some(Val::I(144)))
        );
        v.reset();
        // No kill point at all delegates to the plain path.
        assert_eq!(
            v.invoke_killable(&[Val::I(12)], u64::MAX / 4, None),
            VirtineOutcome::Returned(Some(Val::I(144)))
        );
    }

    #[test]
    fn two_virtines_have_disjoint_memory() {
        // Each instance allocates; neither sees the other's allocations.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("allocator", 0);
        fb.virtine();
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let seven = fb.const_i(7);
        fb.store(p, 0, seven);
        let v = fb.load(p, 0);
        fb.ret(Some(v));
        m.add(fb.finish());
        let img = extract_virtines(&m).remove(0);

        let mut a = Virtine::new(img.clone());
        let mut b = Virtine::new(img);
        assert_eq!(
            a.invoke(&[], u64::MAX / 4),
            VirtineOutcome::Returned(Some(Val::I(7)))
        );
        assert_eq!(
            b.invoke(&[], u64::MAX / 4),
            VirtineOutcome::Returned(Some(Val::I(7)))
        );
        assert_eq!(a.guest_allocations(), 1);
        assert_eq!(b.guest_allocations(), 1);
        a.reset();
        assert_eq!(a.guest_allocations(), 0);
        assert_eq!(b.guest_allocations(), 1, "reset of A must not touch B");
    }

    #[test]
    fn reset_discards_resident_pages() {
        // A fresh virtine has no backing pages; running materializes some;
        // reset (the snapshot restore) drops them all.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("writer", 0);
        fb.virtine();
        let sz = fb.const_i(64 * 1024);
        let p = fb.alloc(sz);
        let seven = fb.const_i(7);
        fb.store(p, 0, seven);
        let off = fb.const_i(32 * 1024);
        let far = fb.bin(BinOp::Add, p, off);
        fb.store(far, 0, seven);
        fb.ret(None);
        m.add(fb.finish());
        let img = extract_virtines(&m).remove(0);

        let mut v = Virtine::new(img);
        assert_eq!(v.resident_pages(), 0);
        assert_eq!(v.invoke(&[], u64::MAX / 4), VirtineOutcome::Returned(None));
        assert!(
            v.resident_pages() >= 2,
            "stores 32 KiB apart must land on distinct pages"
        );
        v.reset();
        assert_eq!(v.resident_pages(), 0, "restore discards guest pages");
    }
}
