//! Property tests for the serving plane: for arbitrary load, chaos rates,
//! arrival shapes, and topology, a serving run is shard-invariant and
//! deterministic, its fault ledger balances, and its request conservation
//! holds (offered == completed + shed).

use interweave_core::arrivals::ArrivalKind;
use interweave_core::machine::MachineConfig;
use interweave_core::time::Cycles;
use interweave_core::FaultConfig;
use interweave_ir::programs;
use interweave_ir::types::Val;
use interweave_kernel::watchdog::WatchdogPolicy;
use interweave_virtines::extract::extract_one;
use interweave_virtines::serve::{
    run_serve, MetricsPolicy, PoolOptions, RetryPolicy, ServeConfig, ServiceProfile,
};
use proptest::prelude::*;

fn cfg(
    arrival: ArrivalKind,
    mean_gap_us: f64,
    seed: u64,
    workers: usize,
    chaos: (f64, f64, f64),
    budget: u64,
    metrics: MetricsPolicy,
) -> ServeConfig {
    let (kill, drop_ipi, alloc_fail) = chaos;
    ServeConfig {
        arrival,
        mean_gap_us,
        duration_us: 20_000.0,
        seed,
        workers,
        queue_cap: 6,
        deadline_slack_us: 300.0,
        budget,
        pool: PoolOptions {
            cache_capacity: 32,
            prewarm: 1,
            retry: RetryPolicy {
                max_attempts: 4,
                base: Cycles(2_000),
                cap: Cycles(16_000),
                jitter_frac: 0.25,
            },
        },
        faults: FaultConfig {
            virtine_kill: kill,
            drop_ipi,
            alloc_fail,
            ..FaultConfig::quiet(seed ^ 0xFA)
        },
        watchdog: WatchdogPolicy::new(Cycles(50_000)),
        metrics,
        blackbox: 16,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any configuration — under any latency-sink policy (exact,
    /// sketched, windowed) — yields a report that is bit-identical
    /// across shard counts and across repeated runs, conserves requests,
    /// and keeps every fault class's ledger balanced.
    #[test]
    fn serve_is_shard_invariant_conserving_and_balanced(
        arrival_sel in 0usize..3,
        gap_sel in 0usize..3,
        workers in 1usize..7,
        shards in 1usize..5,
        kill_sel in 0usize..3,
        metrics_sel in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let arrival = ArrivalKind::ALL[arrival_sel];
        let mean_gap_us = [3.0, 12.0, 60.0][gap_sel];
        let kill = [0.0, 0.15, 0.5][kill_sel];
        let metrics = [
            MetricsPolicy::Exact,
            MetricsPolicy::Sketched,
            MetricsPolicy::Windowed { window: Cycles(40_000) },
        ][metrics_sel];

        let prog = programs::fib(9);
        let image = extract_one(&prog.module, prog.entry);
        let args = [Val::I(9)];
        let profile = ServiceProfile::calibrate(&image, &args, u64::MAX / 4);
        let budget = profile.guest_cycles + profile.guest_cycles / 3 + 2;
        let mc = MachineConfig::test(2);
        let c = cfg(arrival, mean_gap_us, seed, workers, (kill, 0.04, 0.04), budget, metrics);

        let base = run_serve(&image, &args, &mc, &c, 1);
        let sharded = run_serve(&image, &args, &mc, &c, shards);
        prop_assert_eq!(&base, &sharded, "shard count changed the report");
        let again = run_serve(&image, &args, &mc, &c, 1);
        prop_assert_eq!(&base, &again, "double run diverged");

        // Request conservation: everything offered is served or shed.
        prop_assert_eq!(
            base.offered,
            base.completed + base.shed_queue + base.shed_deadline + base.shed_retry
        );
        prop_assert_eq!(base.completed, base.latency_us.count() as u64);
        prop_assert!(base.accounts_balanced(), "ledger out of balance: {:?}", base.faults);
    }
}
