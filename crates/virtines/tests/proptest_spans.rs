//! Property tests for virtine telemetry spans: restart attempts nest
//! inside their recovery episode (well-bracketed, never partially
//! overlapping), and registry counters track pool statistics exactly,
//! for arbitrary kill probabilities and request mixes.

use interweave_core::telemetry::{well_bracketed, Layer, Level, Sink, SpanKind};
use interweave_core::{FaultConfig, FaultPlan};
use interweave_virtines::context::VirtineOutcome;
use interweave_virtines::extract::extract_one;
use interweave_virtines::wasp::Wasp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any kill pressure, the span stream is well-bracketed: each
    /// recovery episode is one `FaultRecovery` span that strictly contains
    /// its `VirtineCall` attempt spans, and plain calls stand alone.
    #[test]
    fn nested_spans_are_well_bracketed(
        fib_n in 8i64..13,
        reqs in 1usize..8,
        kill_sel in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let kill = [0.0, 0.3, 0.6, 0.9][kill_sel];
        let prog = interweave_ir::programs::fib(fib_n);
        let image = extract_one(&prog.module, prog.entry);

        // Budget tight enough that an injected kill usually lands mid-run.
        let mut probe = interweave_virtines::context::Virtine::new(image.clone());
        probe.invoke(&prog.args, u64::MAX / 4);
        let budget = probe.guest_cycles + probe.guest_cycles / 4;

        let mut faults = FaultPlan::new(FaultConfig {
            virtine_kill: kill,
            ..FaultConfig::quiet(seed)
        });
        let mc = interweave_core::machine::MachineConfig::test(2);
        let mut w = Wasp::new(image, mc);
        let sink = Sink::on(Level::Full);
        w.set_telemetry(sink.clone());
        let mut restarts = 0u64;
        for _ in 0..reqs {
            let (outcome, _, r) = w.invoke_recovering(&prog.args, budget, &mut faults, 64);
            prop_assert!(matches!(outcome, VirtineOutcome::Returned(_)));
            restarts += r as u64;
        }

        let spans = sink.spans();
        prop_assert!(spans.iter().all(|s| s.layer == Layer::Virtine));
        if let Some((a, b)) = well_bracketed(&spans) {
            prop_assert!(false, "partial overlap: {:?} vs {:?}", a, b);
        }
        // One call span per invocation; one recovery span per episode that
        // actually restarted; each recovery encloses at least two attempts.
        let calls = spans.iter().filter(|s| s.kind == SpanKind::VirtineCall).count() as u64;
        let recoveries: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::FaultRecovery)
            .collect();
        prop_assert_eq!(calls, w.stats.invocations);
        prop_assert_eq!(calls, reqs as u64 + restarts);
        for rec in &recoveries {
            let inside = spans
                .iter()
                .filter(|s| {
                    s.kind == SpanKind::VirtineCall && rec.start <= s.start && s.end <= rec.end
                })
                .count();
            prop_assert!(inside >= 2, "a recovery episode holds retries, got {}", inside);
        }

        // Registry counters mirror the pool statistics exactly.
        prop_assert_eq!(sink.counter("virtines.invocations"), w.stats.invocations);
        prop_assert_eq!(sink.counter("virtines.restarts"), w.stats.restarts);
        prop_assert_eq!(sink.counter("virtines.restarts"), restarts);
        prop_assert_eq!(sink.counter("virtines.faults_detected"), w.stats.faults_detected);
        prop_assert_eq!(
            sink.counter("virtines.cold_starts") + sink.counter("virtines.reuses"),
            w.stats.invocations
        );
    }
}
