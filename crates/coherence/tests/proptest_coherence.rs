//! Property tests for the coherence protocol: the single-writer/multiple-
//! reader invariant and read freshness hold for arbitrary access
//! interleavings, in both modes, with classification respected.

use interweave_coherence::protocol::{Class, CohMode, ProtocolKind, System, SystemConfig};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Acc {
    core: usize,
    line: u64,
    write: bool,
}

fn accesses(cores: usize, lines: u64) -> impl Strategy<Value = Vec<Acc>> {
    prop::collection::vec(
        (0..cores, 0..lines, any::<bool>()).prop_map(|(core, line, write)| Acc {
            core,
            line,
            write,
        }),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full MESI: SWMR + directory consistency after every access; reads
    /// always observe the latest version (the debug asserts inside read()
    /// fire otherwise).
    #[test]
    fn full_mesi_swmr_under_random_interleavings(accs in accesses(4, 32)) {
        let mut s = System::new(SystemConfig::test(4, CohMode::Full));
        for a in accs {
            if a.write {
                s.write(a.core, a.line);
            } else {
                s.read(a.core, a.line);
            }
        }
        s.check_swmr();
    }

    /// Tiny caches force constant evictions; the invariants must survive
    /// the resulting writebacks and directory updates.
    #[test]
    fn swmr_survives_capacity_pressure(accs in accesses(3, 64)) {
        let mut s = System::new(SystemConfig {
            cores: 3,
            l1_lines: 4,
            mode: CohMode::Full,
            protocol: ProtocolKind::Mesi,
            lat: Default::default(),
        });
        for (i, a) in accs.iter().enumerate() {
            if a.write {
                s.write(a.core, a.line);
            } else {
                s.read(a.core, a.line);
            }
            if i % 16 == 0 {
                s.check_swmr();
            }
        }
        s.check_swmr();
    }

    /// Selective mode with a private partition: each core only touches its
    /// own private lines plus a shared tail. No protocol invariant breaks,
    /// and the private lines never involve the directory.
    #[test]
    fn selective_private_partition_is_sound(raw in accesses(4, 16), shared in accesses(4, 8)) {
        let mut s = System::new(SystemConfig::test(4, CohMode::Selective));
        // Lines 0..64 partitioned: core c owns [c*16, (c+1)*16).
        for c in 0..4u64 {
            s.classify(c * 16..(c + 1) * 16, Class::Private(c as usize));
        }
        // Shared region at 1000+.
        for a in raw {
            let line = a.core as u64 * 16 + (a.line % 16);
            if a.write {
                s.write(a.core, line);
            } else {
                s.read(a.core, line);
            }
        }
        prop_assert_eq!(s.stats.dir_lookups, 0, "private traffic touched the directory");
        for a in shared {
            let line = 1000 + (a.line % 8);
            if a.write {
                s.write(a.core, line);
            } else {
                s.read(a.core, line);
            }
        }
        s.check_swmr();
    }

    /// Selective never loses to Full on interconnect energy for purely
    /// private traffic, whatever the access pattern.
    #[test]
    fn deactivation_never_increases_private_energy(accs in accesses(1, 64)) {
        let run = |mode| {
            let mut s = System::new(SystemConfig::test(2, mode));
            s.classify(0..64, Class::Private(0));
            for a in &accs {
                if a.write {
                    s.write(0, a.line);
                } else {
                    s.read(0, a.line);
                }
            }
            s.energy.interconnect.get()
        };
        let full = run(CohMode::Full);
        let sel = run(CohMode::Selective);
        prop_assert!(sel <= full, "selective {sel} > full {full}");
    }
}
