//! Property tests for region reclassification (the selective-mode hand-off
//! path): moving ownership around arbitrarily never breaks freshness or the
//! protocol invariants.

use interweave_coherence::protocol::{Class, CohMode, System, SystemConfig};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u64),
    Read(u64),
    HandTo(usize),
}

fn ops(lines: u64, cores: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..lines).prop_map(Op::Write),
            (0..lines).prop_map(Op::Read),
            (0..cores).prop_map(Op::HandTo),
        ],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A region handed between arbitrary owners, with reads and writes by
    /// the current owner in between, always observes the latest data (the
    /// debug asserts in read()) and preserves SWMR for the shared rest.
    #[test]
    fn ownership_migration_is_always_fresh(ops in ops(24, 4)) {
        let mut s = System::new(SystemConfig::test(4, CohMode::Selective));
        let region: Vec<u64> = (0..24).collect();
        let mut owner = 0usize;
        s.classify(region.iter().copied(), Class::Private(owner));
        for op in ops {
            match op {
                Op::Write(l) => {
                    s.write(owner, l);
                }
                Op::Read(l) => {
                    s.read(owner, l);
                }
                Op::HandTo(new_owner) => {
                    s.reclassify(&region, Class::Private(new_owner));
                    owner = new_owner;
                }
            }
        }
        // Final full read-back by the current owner.
        for &l in &region {
            s.read(owner, l);
        }
        s.check_swmr();
    }

    /// Freezing a written region to read-only lets every core read the
    /// latest values.
    #[test]
    fn freeze_to_readonly_publishes_latest(writes in prop::collection::vec(0u64..16, 1..60)) {
        let mut s = System::new(SystemConfig::test(4, CohMode::Selective));
        s.classify(0..16, Class::Private(1));
        for &l in &writes {
            s.write(1, l);
        }
        let region: Vec<u64> = (0..16).collect();
        s.reclassify(&region, Class::ReadOnly);
        for core in 0..4 {
            for &l in &region {
                s.read(core, l); // freshness asserted inside
            }
        }
        prop_assert_eq!(s.stats.faults_or_zero(), 0);
    }
}

/// Tiny extension trait so the test reads naturally even though the stats
/// struct has no faults field (protocol violations panic instead).
trait FaultsOrZero {
    fn faults_or_zero(&self) -> u64;
}
impl FaultsOrZero for interweave_coherence::protocol::CohStats {
    fn faults_or_zero(&self) -> u64 {
        0
    }
}
