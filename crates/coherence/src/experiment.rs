//! The Fig. 7 experiment: speedup and interconnect energy of selective
//! coherence deactivation.
//!
//! Each benchmark runs twice — full MESI and selective — on the same
//! machine with the same access streams. Per round, each core's accesses
//! accumulate latency on its own clock; the round ends at the slowest core
//! (fork-join barrier), and in selective mode the producer→consumer
//! hand-offs reclassify at the boundary (charged to the handing core).
//! Reported: makespan speedup and interconnect-energy ratio.
//!
//! ## The sharded engine
//!
//! The round loop runs on [`ShardedKernel`]: each event-queue shard owns a
//! contiguous block of cores (`shard = core · shards / cores`) and fires
//! that block's consume/work events; the only cross-shard traffic is the
//! round-boundary hand-off of a produced buffer to the successor core,
//! which travels through the kernel's deterministic mailbox and is applied
//! at the window barrier in canonical `(time, sender shard, sender seq)`
//! order. Under the contiguous mapping that order *is* ascending core
//! order — exactly the sequential reference loop — so the makespan and
//! the (order-sensitive) f64 energy accumulation are bit-identical at
//! every shard count. A model-equality test below pins this against the
//! retired sequential implementation.

use crate::protocol::{Class, CohMode, ProtocolKind, System, SystemConfig};
use interweave_core::{Cycles, ShardedKernel};

fn interweave_coherence_protocol_kind() -> ProtocolKind {
    ProtocolKind::Mesi
}
use crate::workloads::{
    fig7_mixes, handoff_range, initialize_readonly, round_stream_into, Access, Layout, WorkloadMix,
};

/// One benchmark's outcome under both policies.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Full-MESI makespan (cycles).
    pub full_cycles: u64,
    /// Selective makespan (cycles).
    pub selective_cycles: u64,
    /// Full-MESI interconnect energy (pJ).
    pub full_noc_energy: f64,
    /// Selective interconnect energy (pJ).
    pub selective_noc_energy: f64,
}

impl Fig7Row {
    /// Selective speedup over full MESI (Fig. 7's y-axis).
    pub fn speedup(&self) -> f64 {
        self.full_cycles as f64 / self.selective_cycles as f64
    }

    /// Interconnect-energy reduction (1 − selective/full).
    pub fn energy_reduction(&self) -> f64 {
        1.0 - self.selective_noc_energy / self.full_noc_energy
    }
}

/// Run one benchmark under one policy; returns `(makespan, noc energy)`.
pub fn run_one(mix: &WorkloadMix, cores: usize, mode: CohMode, seed: u64) -> (u64, f64) {
    run_one_on_mesh(mix, cores, mode, seed, None)
}

/// `run_one` with an optional disaggregated NoC (tiles per domain, extra
/// cross-domain hop penalty) — the §V-B "benefits grow with ...
/// disaggregation" axis.
pub fn run_one_on_mesh(
    mix: &WorkloadMix,
    cores: usize,
    mode: CohMode,
    seed: u64,
    disaggregation: Option<(usize, u32)>,
) -> (u64, f64) {
    run_one_sharded(mix, cores, mode, seed, disaggregation, 1)
}

/// One core's simulated activity in the sharded round loop. The payload
/// names the core; its shard is fixed by the contiguous core→shard map.
#[derive(Debug, Clone, Copy)]
enum CohEvent {
    /// Read the predecessor's hand-off buffer (rounds after the first) —
    /// and, in selective mode, hand the region back for refilling.
    Consume(usize),
    /// The round's main access stream plus the produce phase.
    Work(usize),
    /// Round-boundary hand-off: this core's freshly produced buffer
    /// reclassifies to its successor. Travels cross-shard through the
    /// mailbox and is applied at the barrier, never enqueued.
    Handoff(usize),
}

/// Round `r` on the sharded timeline. Three timestamps per round keep the
/// phases in disjoint conservative windows: consume at `3r+1`, work at
/// `3r+2`, and hand-off envelopes delivered at `3r+3` — one cycle after
/// their `3r+2` send, satisfying the kernel's minimum lookahead.
fn consume_at(round: usize) -> Cycles {
    Cycles(3 * round as u64 + 1)
}
fn work_at(round: usize) -> Cycles {
    Cycles(3 * round as u64 + 2)
}

/// [`run_one_on_mesh`] on `shards` event-queue shards. Bit-identical
/// results at every shard count (see the module docs for the argument);
/// `shards` is clamped to `[1, cores]`.
pub fn run_one_sharded(
    mix: &WorkloadMix,
    cores: usize,
    mode: CohMode,
    seed: u64,
    disaggregation: Option<(usize, u32)>,
    shards: usize,
) -> (u64, f64) {
    run_one_inner(mix, cores, mode, seed, disaggregation, shards, None)
}

/// The engine behind [`run_one_sharded`]. `streams`, when given, holds the
/// pre-generated access stream for `[round * cores + core]` — the streams
/// depend only on `(mix, cores, seed)`, so [`fig7_impl`] generates them
/// once and replays them for both coherence modes.
fn run_one_inner(
    mix: &WorkloadMix,
    cores: usize,
    mode: CohMode,
    seed: u64,
    disaggregation: Option<(usize, u32)>,
    shards: usize,
    streams: Option<&[Vec<Access>]>,
) -> (u64, f64) {
    let shards = shards.clamp(1, cores);
    let mut sys = System::new(SystemConfig {
        cores,
        l1_lines: 512,
        mode,
        protocol: interweave_coherence_protocol_kind(),
        lat: Default::default(),
    });
    if let Some((per_domain, penalty)) = disaggregation {
        sys.mesh = crate::noc::Mesh::disaggregated(cores, per_domain, penalty);
    }
    let layout = Layout::new(mix, cores);
    // The footprint is known up front and contiguous from the layout base:
    // back it with dense storage so the measured region never hashes.
    sys.reserve_dense(0x1000, layout.total_lines(mix));
    // Initialization phase (not measured, matching the paper's region-of-
    // interest methodology): build the read-only input, then classify.
    initialize_readonly(&mut sys, mix, &layout);
    if mode == CohMode::Selective {
        layout.classify(&mut sys, mix);
    }
    // Reset energy after init so the ROI is what we report.
    sys.energy = Default::default();

    // Contiguous core→shard map: (shard asc, within-shard seq asc) equals
    // ascending core order, which is what makes the window order — and the
    // mailbox drain order — match the sequential reference exactly.
    let shard_of = |core: usize| core * shards / cores;
    let mut k: ShardedKernel<CohEvent> = ShardedKernel::new(shards);
    if mix.rounds > 0 {
        for core in 0..cores {
            k.schedule(shard_of(core), work_at(0), CohEvent::Work(core));
        }
    }

    let mut makespan = 0u64;
    let mut per_core = vec![0u64; cores];
    let mut stream = Vec::new();
    let mut handoff = Vec::new();
    while let Some((_, w)) = k.peek_next() {
        // One conservative window per phase timestamp. Each shard fires
        // its block of cores; shards only read/write their own queue plus
        // their mailbox lane, so this loop is the parallel region.
        for s in 0..shards {
            while let Some((t, ev)) = k.shard_mut(s).pop_before(w) {
                match ev {
                    CohEvent::Consume(core) => {
                        let mut tc = 0u64;
                        let prev = (core + cores - 1) % cores;
                        // The consumer reads its predecessor's buffer...
                        for l in handoff_range(mix, &layout, prev) {
                            tc += sys.read(core, l);
                        }
                        if mode == CohMode::Selective {
                            // ...then hands the drained buffer back so
                            // the predecessor can refill it this round.
                            handoff.clear();
                            handoff.extend(handoff_range(mix, &layout, prev));
                            tc += sys.reclassify(&handoff, Class::Private(prev));
                        }
                        per_core[core] += tc;
                    }
                    CohEvent::Work(core) => {
                        let round = ((t.get() - 2) / 3) as usize;
                        let mut tc = 0u64;
                        let accs = match streams {
                            Some(s) => &s[round * cores + core][..],
                            None => {
                                round_stream_into(mix, &layout, core, round, seed, &mut stream);
                                &stream[..]
                            }
                        };
                        for &acc in accs {
                            tc += match acc {
                                Access::Read(l) => sys.read(core, l),
                                Access::Write(l) => sys.write(core, l),
                            };
                        }
                        // Produce phase: fill the hand-off buffer.
                        for l in handoff_range(mix, &layout, core) {
                            tc += sys.write(core, l);
                        }
                        per_core[core] += tc;
                        if round + 1 < mix.rounds {
                            k.schedule(s, consume_at(round + 1), CohEvent::Consume(core));
                            k.schedule(s, work_at(round + 1), CohEvent::Work(core));
                        }
                        if mode == CohMode::Selective {
                            let to = shard_of((core + 1) % cores);
                            k.send(s, to, t + Cycles(1), CohEvent::Handoff(core));
                        }
                    }
                    CohEvent::Handoff(_) => {
                        unreachable!("hand-offs are barrier-applied, never enqueued")
                    }
                }
            }
        }
        // Work windows end the round: apply the hand-offs in canonical
        // mailbox order (= ascending producer core under the contiguous
        // map), close the barrier, and verify coherence.
        if w.get() % 3 == 2 {
            let mut handoff_max = 0u64;
            for env in k.drain_sends() {
                let CohEvent::Handoff(core) = env.payload else {
                    unreachable!("only hand-offs cross shards")
                };
                handoff.clear();
                handoff.extend(handoff_range(mix, &layout, core));
                let new_owner = (core + 1) % cores;
                let cost = sys.reclassify(&handoff, Class::Private(new_owner));
                handoff_max = handoff_max.max(cost);
            }
            let round_max = per_core.iter().max().copied().unwrap_or(0) + handoff_max;
            makespan += round_max;
            per_core.iter_mut().for_each(|t| *t = 0);
            sys.check_swmr();
        }
    }
    (makespan, sys.energy.interconnect.get())
}

/// Produce all Fig. 7 rows at the given scale.
pub fn fig7(cores: usize, seed: u64) -> Vec<Fig7Row> {
    fig7_impl(cores, seed, 1, 1)
}

/// Fig. 7 with each benchmark's access volume divided by `div` — the same
/// qualitative bands at a fraction of the simulation cost (used by tests;
/// the bench binary runs `div = 1`).
pub fn fig7_reduced(cores: usize, seed: u64, div: usize) -> Vec<Fig7Row> {
    fig7_impl(cores, seed, div, 1)
}

/// Full-volume Fig. 7 on `shards` event-queue shards — same rows as
/// [`fig7`] bit-for-bit at every shard count.
pub fn fig7_sharded(cores: usize, seed: u64, shards: usize) -> Vec<Fig7Row> {
    fig7_impl(cores, seed, 1, shards)
}

/// Reduced-volume Fig. 7 on `shards` event-queue shards (the scoreboard's
/// variant) — same rows as [`fig7_reduced`] bit-for-bit at every count.
pub fn fig7_reduced_sharded(cores: usize, seed: u64, div: usize, shards: usize) -> Vec<Fig7Row> {
    fig7_impl(cores, seed, div, shards)
}

fn fig7_impl(cores: usize, seed: u64, div: usize, shards: usize) -> Vec<Fig7Row> {
    fig7_mixes()
        .iter()
        .map(|mix| {
            let mut mix = mix.clone();
            mix.accesses_per_round = (mix.accesses_per_round / div.max(1)).max(200);
            // Both coherence modes replay the identical access streams:
            // generate them once.
            let layout = Layout::new(&mix, cores);
            let mut streams = vec![Vec::new(); mix.rounds * cores];
            for round in 0..mix.rounds {
                for core in 0..cores {
                    round_stream_into(
                        &mix,
                        &layout,
                        core,
                        round,
                        seed,
                        &mut streams[round * cores + core],
                    );
                }
            }
            let (full_cycles, full_noc_energy) = run_one_inner(
                &mix,
                cores,
                CohMode::Full,
                seed,
                None,
                shards,
                Some(&streams),
            );
            let (selective_cycles, selective_noc_energy) = run_one_inner(
                &mix,
                cores,
                CohMode::Selective,
                seed,
                None,
                shards,
                Some(&streams),
            );
            Fig7Row {
                name: mix.name,
                full_cycles,
                selective_cycles,
                full_noc_energy,
                selective_noc_energy,
            }
        })
        .collect()
}

/// Mean speedup across rows (the paper's "average speedup is ~46 %").
pub fn mean_speedup(rows: &[Fig7Row]) -> f64 {
    rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64
}

/// Mean interconnect-energy reduction ("~53 %").
pub fn mean_energy_reduction(rows: &[Fig7Row]) -> f64 {
    rows.iter().map(|r| r.energy_reduction()).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{consume_accesses, handoff_lines, produce_accesses, round_stream};

    /// The retired sequential round loop, verbatim — the model against
    /// which the sharded engine is proven equal.
    fn run_one_sequential(
        mix: &WorkloadMix,
        cores: usize,
        mode: CohMode,
        seed: u64,
        disaggregation: Option<(usize, u32)>,
    ) -> (u64, f64) {
        let mut sys = System::new(SystemConfig {
            cores,
            l1_lines: 512,
            mode,
            protocol: interweave_coherence_protocol_kind(),
            lat: Default::default(),
        });
        if let Some((per_domain, penalty)) = disaggregation {
            sys.mesh = crate::noc::Mesh::disaggregated(cores, per_domain, penalty);
        }
        let layout = Layout::new(mix, cores);
        sys.reserve_lines(layout.total_lines(mix));
        initialize_readonly(&mut sys, mix, &layout);
        if mode == CohMode::Selective {
            layout.classify(&mut sys, mix);
        }
        sys.energy = Default::default();

        let mut makespan = 0u64;
        let mut per_core = vec![0u64; cores];
        for round in 0..mix.rounds {
            per_core.iter_mut().for_each(|t| *t = 0);
            if round > 0 {
                for (core, pc) in per_core.iter_mut().enumerate() {
                    let mut t = 0u64;
                    for acc in consume_accesses(mix, &layout, core, cores) {
                        t += match acc {
                            Access::Read(l) => sys.read(core, l),
                            Access::Write(l) => sys.write(core, l),
                        };
                    }
                    if mode == CohMode::Selective {
                        let prev = (core + cores - 1) % cores;
                        let lines = handoff_lines(mix, &layout, prev);
                        t += sys.reclassify(&lines, Class::Private(prev));
                    }
                    *pc += t;
                }
            }
            for (core, pc) in per_core.iter_mut().enumerate() {
                let mut t = 0u64;
                for acc in round_stream(mix, &layout, core, round, seed)
                    .into_iter()
                    .chain(produce_accesses(mix, &layout, core))
                {
                    t += match acc {
                        Access::Read(l) => sys.read(core, l),
                        Access::Write(l) => sys.write(core, l),
                    };
                }
                *pc += t;
            }
            let mut round_max = *per_core.iter().max().expect("cores > 0");
            if mode == CohMode::Selective {
                let mut handoff_max = 0u64;
                for core in 0..cores {
                    let lines = handoff_lines(mix, &layout, core);
                    let new_owner = (core + 1) % cores;
                    let cost = sys.reclassify(&lines, Class::Private(new_owner));
                    handoff_max = handoff_max.max(cost);
                }
                round_max += handoff_max;
            }
            makespan += round_max;
            sys.check_swmr();
        }
        (makespan, sys.energy.interconnect.get())
    }

    #[test]
    fn sharded_engine_matches_the_sequential_reference_bit_for_bit() {
        let mut mix = fig7_mixes()[1].clone(); // bfs: heaviest shared traffic
        mix.accesses_per_round /= 8;
        for mode in [CohMode::Full, CohMode::Selective] {
            let (seq_mk, seq_e) = run_one_sequential(&mix, 8, mode, 11, None);
            for shards in [1, 2, 3, 4, 8] {
                let (mk, e) = run_one_sharded(&mix, 8, mode, 11, None, shards);
                assert_eq!(mk, seq_mk, "{mode:?} makespan diverged at {shards} shards");
                assert_eq!(
                    e.to_bits(),
                    seq_e.to_bits(),
                    "{mode:?} energy diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn sharded_engine_matches_sequential_on_a_disaggregated_mesh() {
        let mut mix = fig7_mixes()[4].clone(); // nbody: widest private heaps
        mix.accesses_per_round /= 8;
        let disagg = Some((8, 16));
        for mode in [CohMode::Full, CohMode::Selective] {
            let (seq_mk, seq_e) = run_one_sequential(&mix, 16, mode, 7, disagg);
            for shards in [2, 5, 16] {
                let (mk, e) = run_one_sharded(&mix, 16, mode, 7, disagg, shards);
                assert_eq!(mk, seq_mk, "{mode:?} makespan diverged at {shards} shards");
                assert_eq!(e.to_bits(), seq_e.to_bits());
            }
        }
    }

    #[test]
    fn shard_count_never_changes_the_rows() {
        let base = fig7_impl(8, 11, 8, 1);
        for shards in [2, 4, 8] {
            let rows = fig7_impl(8, 11, 8, shards);
            for (a, b) in base.iter().zip(&rows) {
                assert_eq!(a.full_cycles, b.full_cycles, "{}@{shards}", a.name);
                assert_eq!(a.selective_cycles, b.selective_cycles);
                assert_eq!(a.full_noc_energy.to_bits(), b.full_noc_energy.to_bits());
                assert_eq!(
                    a.selective_noc_energy.to_bits(),
                    b.selective_noc_energy.to_bits()
                );
            }
        }
    }

    #[test]
    fn selective_wins_on_every_benchmark() {
        for row in fig7_reduced(8, 11, 4) {
            assert!(
                row.speedup() > 1.0,
                "{}: speedup {:.3}",
                row.name,
                row.speedup()
            );
            assert!(
                row.energy_reduction() > 0.0,
                "{}: energy reduction {:.3}",
                row.name,
                row.energy_reduction()
            );
        }
    }

    #[test]
    fn fig7_scale_reproduces_the_papers_bands() {
        // Paper: "the average speedup is ~46%, while the interconnect
        // energy ... is reduced by ~53%" on the 24-core machine. Accept a
        // generous band around both.
        let rows = fig7_reduced(24, 11, 3);
        let sp = mean_speedup(&rows);
        let er = mean_energy_reduction(&rows);
        assert!(
            (1.25..=1.75).contains(&sp),
            "mean speedup {sp:.3} (rows: {:?})",
            rows.iter()
                .map(|r| (r.name, r.speedup()))
                .collect::<Vec<_>>()
        );
        assert!((0.35..=0.75).contains(&er), "mean energy reduction {er:.3}");
    }

    #[test]
    fn benefits_grow_with_scale() {
        // §V-B: "The benefits grow with scale and disaggregation."
        let small = mean_speedup(&fig7_reduced(8, 11, 4));
        let large = mean_speedup(&fig7_reduced(24, 11, 4));
        assert!(
            large > small,
            "speedup should grow with scale: 8c {small:.3} vs 24c {large:.3}"
        );
    }

    #[test]
    fn benefits_grow_with_disaggregation() {
        // §V-B's closing sentence: hold the core count fixed and stretch
        // the cross-domain links; selective deactivation (which keeps
        // private traffic on-domain) wins more.
        let mut mix = fig7_mixes()[0].clone();
        mix.accesses_per_round /= 4; // reduced scale, same shape
        let speedup = |disagg| {
            let (full, _) = run_one_on_mesh(&mix, 16, CohMode::Full, 11, disagg);
            let (sel, _) = run_one_on_mesh(&mix, 16, CohMode::Selective, 11, disagg);
            full as f64 / sel as f64
        };
        let flat = speedup(None);
        let disagg = speedup(Some((8, 16)));
        assert!(
            disagg > flat,
            "disaggregated speedup {disagg:.3} should exceed flat {flat:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = fig7_reduced(8, 3, 4);
        let b = fig7_reduced(8, 3, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.full_cycles, y.full_cycles);
            assert_eq!(x.selective_cycles, y.selective_cycles);
        }
    }
}
