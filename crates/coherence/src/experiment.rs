//! The Fig. 7 experiment: speedup and interconnect energy of selective
//! coherence deactivation.
//!
//! Each benchmark runs twice — full MESI and selective — on the same
//! machine with the same access streams. Per round, each core's accesses
//! accumulate latency on its own clock; the round ends at the slowest core
//! (fork-join barrier), and in selective mode the producer→consumer
//! hand-offs reclassify at the boundary (charged to the handing core).
//! Reported: makespan speedup and interconnect-energy ratio.

use crate::protocol::{Class, CohMode, ProtocolKind, System, SystemConfig};

fn interweave_coherence_protocol_kind() -> ProtocolKind {
    ProtocolKind::Mesi
}
use crate::workloads::{
    consume_accesses, fig7_mixes, handoff_lines, initialize_readonly, produce_accesses,
    round_stream, Access, Layout, WorkloadMix,
};

/// One benchmark's outcome under both policies.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Full-MESI makespan (cycles).
    pub full_cycles: u64,
    /// Selective makespan (cycles).
    pub selective_cycles: u64,
    /// Full-MESI interconnect energy (pJ).
    pub full_noc_energy: f64,
    /// Selective interconnect energy (pJ).
    pub selective_noc_energy: f64,
}

impl Fig7Row {
    /// Selective speedup over full MESI (Fig. 7's y-axis).
    pub fn speedup(&self) -> f64 {
        self.full_cycles as f64 / self.selective_cycles as f64
    }

    /// Interconnect-energy reduction (1 − selective/full).
    pub fn energy_reduction(&self) -> f64 {
        1.0 - self.selective_noc_energy / self.full_noc_energy
    }
}

/// Run one benchmark under one policy; returns `(makespan, noc energy)`.
pub fn run_one(mix: &WorkloadMix, cores: usize, mode: CohMode, seed: u64) -> (u64, f64) {
    run_one_on_mesh(mix, cores, mode, seed, None)
}

/// `run_one` with an optional disaggregated NoC (tiles per domain, extra
/// cross-domain hop penalty) — the §V-B "benefits grow with ...
/// disaggregation" axis.
pub fn run_one_on_mesh(
    mix: &WorkloadMix,
    cores: usize,
    mode: CohMode,
    seed: u64,
    disaggregation: Option<(usize, u32)>,
) -> (u64, f64) {
    let mut sys = System::new(SystemConfig {
        cores,
        l1_lines: 512,
        mode,
        protocol: interweave_coherence_protocol_kind(),
        lat: Default::default(),
    });
    if let Some((per_domain, penalty)) = disaggregation {
        sys.mesh = crate::noc::Mesh::disaggregated(cores, per_domain, penalty);
    }
    let layout = Layout::new(mix, cores);
    // The footprint is known up front: pre-size the line-state table so
    // the measured region never rehashes.
    sys.reserve_lines(layout.total_lines(mix));
    // Initialization phase (not measured, matching the paper's region-of-
    // interest methodology): build the read-only input, then classify.
    initialize_readonly(&mut sys, mix, &layout);
    if mode == CohMode::Selective {
        layout.classify(&mut sys, mix);
    }
    // Reset energy after init so the ROI is what we report.
    sys.energy = Default::default();

    let mut makespan = 0u64;
    let mut per_core = vec![0u64; cores];
    for round in 0..mix.rounds {
        per_core.iter_mut().for_each(|t| *t = 0);

        // Consume phase (rounds after the first): each core reads the
        // buffer its predecessor produced, then hands ownership back so the
        // predecessor can refill it this round. Under full MESI the same
        // reads simply forward/downgrade through the protocol.
        if round > 0 {
            for (core, pc) in per_core.iter_mut().enumerate() {
                let mut t = 0u64;
                for acc in consume_accesses(mix, &layout, core, cores) {
                    t += match acc {
                        Access::Read(l) => sys.read(core, l),
                        Access::Write(l) => sys.write(core, l),
                    };
                }
                if mode == CohMode::Selective {
                    let prev = (core + cores - 1) % cores;
                    let lines = handoff_lines(mix, &layout, prev);
                    t += sys.reclassify(&lines, Class::Private(prev));
                }
                *pc += t;
            }
        }

        // Work phase: each core's stream runs on its own clock; protocol
        // interactions serialize in core order within the round
        // (deterministic; ordering effects are second-order for the
        // aggregate metrics). The produce phase then fills the hand-off
        // buffer.
        for (core, pc) in per_core.iter_mut().enumerate() {
            let mut t = 0u64;
            for acc in round_stream(mix, &layout, core, round, seed)
                .into_iter()
                .chain(produce_accesses(mix, &layout, core))
            {
                t += match acc {
                    Access::Read(l) => sys.read(core, l),
                    Access::Write(l) => sys.write(core, l),
                };
            }
            *pc += t;
        }

        // Round boundary barrier + hand-off of freshly produced buffers.
        let mut round_max = *per_core.iter().max().expect("cores > 0");
        if mode == CohMode::Selective {
            let mut handoff_max = 0u64;
            for core in 0..cores {
                let lines = handoff_lines(mix, &layout, core);
                let new_owner = (core + 1) % cores;
                let cost = sys.reclassify(&lines, Class::Private(new_owner));
                handoff_max = handoff_max.max(cost);
            }
            round_max += handoff_max;
        }
        makespan += round_max;
        sys.check_swmr();
    }
    (makespan, sys.energy.interconnect.get())
}

/// Produce all Fig. 7 rows at the given scale.
pub fn fig7(cores: usize, seed: u64) -> Vec<Fig7Row> {
    fig7_reduced(cores, seed, 1)
}

/// Fig. 7 with each benchmark's access volume divided by `div` — the same
/// qualitative bands at a fraction of the simulation cost (used by tests;
/// the bench binary runs `div = 1`).
pub fn fig7_reduced(cores: usize, seed: u64, div: usize) -> Vec<Fig7Row> {
    fig7_mixes()
        .iter()
        .map(|mix| {
            let mut mix = mix.clone();
            mix.accesses_per_round = (mix.accesses_per_round / div.max(1)).max(200);
            let (full_cycles, full_noc_energy) = run_one(&mix, cores, CohMode::Full, seed);
            let (selective_cycles, selective_noc_energy) =
                run_one(&mix, cores, CohMode::Selective, seed);
            Fig7Row {
                name: mix.name,
                full_cycles,
                selective_cycles,
                full_noc_energy,
                selective_noc_energy,
            }
        })
        .collect()
}

/// Mean speedup across rows (the paper's "average speedup is ~46 %").
pub fn mean_speedup(rows: &[Fig7Row]) -> f64 {
    rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64
}

/// Mean interconnect-energy reduction ("~53 %").
pub fn mean_energy_reduction(rows: &[Fig7Row]) -> f64 {
    rows.iter().map(|r| r.energy_reduction()).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_wins_on_every_benchmark() {
        for row in fig7_reduced(8, 11, 4) {
            assert!(
                row.speedup() > 1.0,
                "{}: speedup {:.3}",
                row.name,
                row.speedup()
            );
            assert!(
                row.energy_reduction() > 0.0,
                "{}: energy reduction {:.3}",
                row.name,
                row.energy_reduction()
            );
        }
    }

    #[test]
    fn fig7_scale_reproduces_the_papers_bands() {
        // Paper: "the average speedup is ~46%, while the interconnect
        // energy ... is reduced by ~53%" on the 24-core machine. Accept a
        // generous band around both.
        let rows = fig7_reduced(24, 11, 3);
        let sp = mean_speedup(&rows);
        let er = mean_energy_reduction(&rows);
        assert!(
            (1.25..=1.75).contains(&sp),
            "mean speedup {sp:.3} (rows: {:?})",
            rows.iter()
                .map(|r| (r.name, r.speedup()))
                .collect::<Vec<_>>()
        );
        assert!((0.35..=0.75).contains(&er), "mean energy reduction {er:.3}");
    }

    #[test]
    fn benefits_grow_with_scale() {
        // §V-B: "The benefits grow with scale and disaggregation."
        let small = mean_speedup(&fig7_reduced(8, 11, 4));
        let large = mean_speedup(&fig7_reduced(24, 11, 4));
        assert!(
            large > small,
            "speedup should grow with scale: 8c {small:.3} vs 24c {large:.3}"
        );
    }

    #[test]
    fn benefits_grow_with_disaggregation() {
        // §V-B's closing sentence: hold the core count fixed and stretch
        // the cross-domain links; selective deactivation (which keeps
        // private traffic on-domain) wins more.
        let mut mix = fig7_mixes()[0].clone();
        mix.accesses_per_round /= 4; // reduced scale, same shape
        let speedup = |disagg| {
            let (full, _) = run_one_on_mesh(&mix, 16, CohMode::Full, 11, disagg);
            let (sel, _) = run_one_on_mesh(&mix, 16, CohMode::Selective, 11, disagg);
            full as f64 / sel as f64
        };
        let flat = speedup(None);
        let disagg = speedup(Some((8, 16)));
        assert!(
            disagg > flat,
            "disaggregated speedup {disagg:.3} should exceed flat {flat:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = fig7_reduced(8, 3, 4);
        let b = fig7_reduced(8, 3, 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.full_cycles, y.full_cycles);
            assert_eq!(x.selective_cycles, y.selective_cycles);
        }
    }
}
