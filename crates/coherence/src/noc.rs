//! The 2D-mesh network-on-chip: topology, hop latency, flit counts.
//!
//! Fig. 7's energy claim is about this network: every coherence message is
//! flits × hops of router+link energy. Cores and L3/directory slices are
//! co-located one per tile; the home slice of a line is its address hash.

/// Mesh geometry and message parameters.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// Tiles in X.
    pub width: usize,
    /// Tiles in Y.
    pub height: usize,
    /// Cycles per hop (link + router traversal).
    pub cycles_per_hop: u64,
    /// Flits in a control message (requests, invalidations, acks).
    pub control_flits: u32,
    /// Flits in a data message (a 64-byte line in 16-byte flits + header).
    pub data_flits: u32,
    /// Disaggregation: tiles per coherence domain (socket/drawer). Crossing
    /// a domain boundary adds [`Mesh::cross_domain_hops`] equivalent hops —
    /// §V-B: "the benefits grow with scale and disaggregation". `0` means a
    /// single domain.
    pub tiles_per_domain: usize,
    /// Extra hop-equivalents charged when a message crosses domains.
    pub cross_domain_hops: u32,
    /// Pairwise hop distances (row-major over tiles), precomputed so the
    /// per-message path avoids the coordinate divisions.
    hops_tab: Vec<u32>,
    /// ⌈2⁶⁴ / tiles⌉ — the fast-modulo magic behind [`Mesh::home`].
    home_magic: u64,
}

impl Mesh {
    /// A mesh sized for `cores` tiles (squarish factorization).
    pub fn for_cores(cores: usize) -> Mesh {
        let mut w = (cores as f64).sqrt().ceil() as usize;
        w = w.max(1);
        let h = cores.div_ceil(w);
        let mut m = Mesh {
            width: w,
            height: h,
            cycles_per_hop: 3,
            control_flits: 1,
            data_flits: 5,
            tiles_per_domain: 0,
            cross_domain_hops: 0,
            hops_tab: Vec::new(),
            home_magic: 0,
        };
        m.rebuild_tables();
        m
    }

    /// A disaggregated variant: `tiles_per_domain` tiles per socket/drawer,
    /// with `penalty` extra hop-equivalents across domains.
    pub fn disaggregated(cores: usize, tiles_per_domain: usize, penalty: u32) -> Mesh {
        let mut m = Mesh::for_cores(cores);
        m.tiles_per_domain = tiles_per_domain.max(1);
        m.cross_domain_hops = penalty;
        m.rebuild_tables();
        m
    }

    fn rebuild_tables(&mut self) {
        let n = self.width * self.height;
        let mut tab = vec![0u32; n * n];
        for a in 0..n {
            for b in 0..n {
                let (ax, ay) = self.coords(a);
                let (bx, by) = self.coords(b);
                let base = (ax.abs_diff(bx) + ay.abs_diff(by)) as u32;
                tab[a * n + b] = if self.domain(a) != self.domain(b) {
                    base + self.cross_domain_hops
                } else {
                    base
                };
            }
        }
        self.hops_tab = tab;
        // ⌈2⁶⁴ / n⌉; n = 1 wraps to 0, which the multiply in `home` maps
        // to the correct answer (everything homes at tile 0).
        self.home_magic = (u64::MAX / n as u64).wrapping_add(1);
    }

    fn domain(&self, tile: usize) -> usize {
        tile.checked_div(self.tiles_per_domain).unwrap_or(0)
    }

    fn coords(&self, tile: usize) -> (usize, usize) {
        (tile % self.width, tile / self.width)
    }

    /// Manhattan hop distance between two tiles, plus the cross-domain
    /// penalty when they live in different coherence domains.
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        self.hops_tab[a * self.width * self.height + b]
    }

    /// Latency of a message over `hops` hops (zero-hop messages stay in the
    /// tile: one router traversal).
    #[inline]
    pub fn latency(&self, hops: u32) -> u64 {
        self.cycles_per_hop * hops as u64 + 1
    }

    /// The home tile (L3 slice + directory bank) of a line address.
    #[inline]
    pub fn home(&self, line: u64) -> usize {
        // Spread lines across all tiles: `line % tiles`, computed by
        // Lemire's multiply-shift fast modulo (exact for operands < 2³²,
        // which line addresses comfortably are).
        debug_assert!(line < u32::MAX as u64);
        let tiles = (self.width * self.height) as u64;
        let low = self.home_magic.wrapping_mul(line);
        ((low as u128 * tiles as u128) >> 64) as usize
    }

    /// Mean hop distance from `tile` to all tiles (reports).
    pub fn mean_hops_from(&self, tile: usize) -> f64 {
        let n = self.width * self.height;
        let total: u32 = (0..n).map(|t| self.hops(tile, t)).sum();
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_covers_cores() {
        for cores in [1, 2, 8, 24, 64, 192] {
            let m = Mesh::for_cores(cores);
            assert!(m.width * m.height >= cores);
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::for_cores(16); // 4×4
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
    }

    #[test]
    fn hops_symmetric() {
        let m = Mesh::for_cores(24);
        for a in 0..24 {
            for b in 0..24 {
                assert_eq!(m.hops(a, b), m.hops(b, a));
            }
        }
    }

    #[test]
    fn home_is_stable_and_in_range() {
        let m = Mesh::for_cores(24);
        for line in 0..1000u64 {
            let h = m.home(line);
            assert_eq!(h, m.home(line));
            assert!(h < m.width * m.height);
        }
    }

    #[test]
    fn disaggregation_penalizes_cross_domain_messages() {
        let flat = Mesh::for_cores(16);
        let disagg = Mesh::disaggregated(16, 8, 12);
        // Same-domain distances unchanged.
        assert_eq!(flat.hops(0, 5), disagg.hops(0, 5));
        // Cross-domain distances grow by the penalty.
        assert_eq!(disagg.hops(0, 12), flat.hops(0, 12) + 12);
        assert_eq!(disagg.hops(12, 0), disagg.hops(0, 12));
    }

    #[test]
    fn bigger_meshes_have_longer_mean_distances() {
        let small = Mesh::for_cores(8);
        let big = Mesh::for_cores(64);
        assert!(big.mean_hops_from(0) > small.mean_hops_from(0));
    }
}
