//! Memory-ordering selectivity: the fence half of §V-B.
//!
//! "Ordering constraints in consistency models serialize all accesses of a
//! particular type, without selectivity. A fence orders writes that produce
//! data before setting the done flag, but it also orders all other writes
//! the thread issued, even if they are unrelated to the intended use of the
//! fence. Individual writes within a producer's data production subroutine
//! could semantically proceed in any order, yet x86-TSO unnecessarily
//! enforces a total order."
//!
//! The model: a producer issues a mix of *related* writes (the data its
//! consumer will read) and *unrelated* writes (private bookkeeping, often
//! cache misses), then publishes with a release fence. Under TSO the fence
//! drains the whole store buffer — it waits for the slowest outstanding
//! write, related or not. With language-level knowledge (the compiler knows
//! which writes belong to the publication), a *selective release* waits
//! only for the related set.

use interweave_core::rng::SplitMix64;

/// How release fences order prior stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FencePolicy {
    /// x86-TSO: the fence waits for every outstanding store.
    TsoTotal,
    /// Selective: the fence waits only for stores the language marked as
    /// part of the publication.
    SelectiveRelease,
}

/// Workload and machine parameters.
#[derive(Debug, Clone)]
pub struct OrderingConfig {
    /// Publication rounds (produce + fence).
    pub rounds: usize,
    /// Related (published) writes per round.
    pub related_writes: usize,
    /// Unrelated (private) writes per round, interleaved.
    pub unrelated_writes: usize,
    /// Store completion latency on a cache hit.
    pub hit_latency: u64,
    /// Store completion latency on a miss (must reach the home node).
    pub miss_latency: u64,
    /// Probability an *unrelated* write misses (private working sets are
    /// larger, so this is where the slow stores live).
    pub unrelated_miss_rate: f64,
    /// Probability a *related* write misses (publication buffers are small
    /// and hot).
    pub related_miss_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for OrderingConfig {
    fn default() -> OrderingConfig {
        OrderingConfig {
            rounds: 200,
            related_writes: 4,
            unrelated_writes: 24,
            hit_latency: 12,
            miss_latency: 220,
            unrelated_miss_rate: 0.25,
            related_miss_rate: 0.02,
            seed: 23,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct OrderingReport {
    /// Policy measured.
    pub policy: FencePolicy,
    /// Total cycles stalled at fences.
    pub fence_stall_cycles: u64,
    /// Fences executed.
    pub fences: u64,
    /// Mean stall per fence.
    pub mean_stall: f64,
}

/// Simulate the producer under one fence policy.
///
/// Writes issue one per cycle; each completes at `issue + latency`. At the
/// fence, the stall is the gap between "now" and the latest completion of
/// the set the policy must wait for.
pub fn run_ordering(cfg: &OrderingConfig, policy: FencePolicy) -> OrderingReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut now = 0u64;
    let mut stall_total = 0u64;

    for _ in 0..cfg.rounds {
        let mut related_done = now;
        let mut all_done = now;
        // Interleave: unrelated writes spread between the related ones.
        let total = cfg.related_writes + cfg.unrelated_writes;
        for k in 0..total {
            now += 1; // issue
                      // Deterministic Bresenham interleave: exactly `related_writes`
                      // of the `total` are related, spread evenly.
            let is_related = ((k + 1) * cfg.related_writes) / total.max(1)
                > (k * cfg.related_writes) / total.max(1);
            let miss_rate = if is_related {
                cfg.related_miss_rate
            } else {
                cfg.unrelated_miss_rate
            };
            let lat = if rng.chance(miss_rate) {
                cfg.miss_latency
            } else {
                cfg.hit_latency
            };
            let done = now + lat;
            all_done = all_done.max(done);
            if is_related {
                related_done = related_done.max(done);
            }
        }
        // The release fence.
        let wait_until = match policy {
            FencePolicy::TsoTotal => all_done,
            FencePolicy::SelectiveRelease => related_done,
        };
        let stall = wait_until.saturating_sub(now);
        stall_total += stall;
        now = now.max(wait_until) + 1; // the flag store itself
    }

    OrderingReport {
        policy,
        fence_stall_cycles: stall_total,
        fences: cfg.rounds as u64,
        mean_stall: stall_total as f64 / cfg.rounds.max(1) as f64,
    }
}

/// Convenience: the stall reduction of selective release over TSO for a
/// configuration (1.0 = no benefit removed… 0.0 = all stall removed).
pub fn stall_ratio(cfg: &OrderingConfig) -> f64 {
    let tso = run_ordering(cfg, FencePolicy::TsoTotal);
    let sel = run_ordering(cfg, FencePolicy::SelectiveRelease);
    sel.fence_stall_cycles as f64 / tso.fence_stall_cycles.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_never_stalls_longer_than_tso() {
        for seed in 0..10 {
            let cfg = OrderingConfig {
                seed,
                ..OrderingConfig::default()
            };
            let tso = run_ordering(&cfg, FencePolicy::TsoTotal);
            let sel = run_ordering(&cfg, FencePolicy::SelectiveRelease);
            assert!(sel.fence_stall_cycles <= tso.fence_stall_cycles);
        }
    }

    #[test]
    fn unrelated_misses_are_the_tso_tax() {
        // With hot publication buffers and miss-prone private traffic, TSO
        // pays for ordering it never needed — the paper's exact complaint.
        let cfg = OrderingConfig::default();
        let ratio = stall_ratio(&cfg);
        assert!(
            ratio < 0.4,
            "selective should remove most fence stall, ratio {ratio:.2}"
        );
    }

    #[test]
    fn no_unrelated_traffic_means_no_benefit() {
        let cfg = OrderingConfig {
            unrelated_writes: 0,
            ..OrderingConfig::default()
        };
        let tso = run_ordering(&cfg, FencePolicy::TsoTotal);
        let sel = run_ordering(&cfg, FencePolicy::SelectiveRelease);
        assert_eq!(tso.fence_stall_cycles, sel.fence_stall_cycles);
    }

    #[test]
    fn benefit_grows_with_unrelated_traffic() {
        // The absolute stall removed per fence grows as more unrelated
        // (miss-prone) stores crowd the buffer. (The *ratio* saturates —
        // both numerator and denominator shift — so measure the gap.)
        let saved = |unrelated| {
            let cfg = OrderingConfig {
                unrelated_writes: unrelated,
                ..OrderingConfig::default()
            };
            let tso = run_ordering(&cfg, FencePolicy::TsoTotal);
            let sel = run_ordering(&cfg, FencePolicy::SelectiveRelease);
            tso.mean_stall - sel.mean_stall
        };
        let s4 = saved(4);
        let s48 = saved(48);
        assert!(
            s48 > s4,
            "more unrelated traffic should widen the gap: {s4:.1} vs {s48:.1} cycles/fence"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = OrderingConfig::default();
        let a = run_ordering(&cfg, FencePolicy::TsoTotal);
        let b = run_ordering(&cfg, FencePolicy::TsoTotal);
        assert_eq!(a.fence_stall_cycles, b.fence_stall_cycles);
    }
}
