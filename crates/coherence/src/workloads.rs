//! PBBS-archetype workloads with MPL-style region annotations.
//!
//! Fig. 7 runs PBBS benchmarks compiled with a variant of MPL whose
//! *disentanglement* semantics prove which heap data is thread-private and
//! which inputs are read-only — and drive the deactivation protocol
//! automatically. The generator reproduces that structure: fork-join rounds
//! where each core works mostly in its private heap, reads shared read-only
//! inputs, updates a small amount of genuinely shared data, and — for the
//! migratory archetypes — hands a slice of its private heap to a neighbour
//! at the round boundary.

use crate::protocol::{Class, CohMode, System};
use interweave_core::rng::SplitMix64;

/// One access in a core's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read a line.
    Read(u64),
    /// Write a line.
    Write(u64),
}

/// Mix parameters for one PBBS archetype.
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    /// Benchmark name.
    pub name: &'static str,
    /// Fork-join rounds.
    pub rounds: usize,
    /// Accesses per core per round.
    pub accesses_per_round: usize,
    /// Fraction of accesses to the core's private heap.
    pub private_frac: f64,
    /// Fraction to read-only input data.
    pub readonly_frac: f64,
    /// (Remainder goes to shared mutable data.)
    /// Write fraction within private accesses.
    pub private_write_frac: f64,
    /// Write fraction within shared accesses.
    pub shared_write_frac: f64,
    /// Private-heap working set in lines per core.
    pub private_lines: u64,
    /// Read-only input size in lines (global).
    pub readonly_lines: u64,
    /// Shared mutable set in lines (global).
    pub shared_lines: u64,
    /// Lines handed from each core to its neighbour at each round boundary
    /// (producer→consumer migration).
    pub handoff_lines: u64,
}

/// The Fig. 7 benchmark set (PBBS archetypes).
pub fn fig7_mixes() -> Vec<WorkloadMix> {
    vec![
        WorkloadMix {
            name: "samplesort",
            rounds: 4,
            accesses_per_round: 4000,
            private_frac: 0.82,
            readonly_frac: 0.12,
            private_write_frac: 0.5,
            shared_write_frac: 0.3,
            private_lines: 1200,
            readonly_lines: 2048,
            shared_lines: 64,
            handoff_lines: 96,
        },
        WorkloadMix {
            name: "bfs",
            rounds: 5,
            accesses_per_round: 3500,
            private_frac: 0.66,
            readonly_frac: 0.26,
            private_write_frac: 0.45,
            shared_write_frac: 0.4,
            private_lines: 900,
            readonly_lines: 4096,
            shared_lines: 128,
            handoff_lines: 48,
        },
        WorkloadMix {
            name: "mis",
            rounds: 5,
            accesses_per_round: 3000,
            private_frac: 0.7,
            readonly_frac: 0.2,
            private_write_frac: 0.5,
            shared_write_frac: 0.5,
            private_lines: 700,
            readonly_lines: 3072,
            shared_lines: 96,
            handoff_lines: 32,
        },
        WorkloadMix {
            name: "convex-hull",
            rounds: 4,
            accesses_per_round: 3800,
            private_frac: 0.78,
            readonly_frac: 0.16,
            private_write_frac: 0.55,
            shared_write_frac: 0.25,
            private_lines: 1000,
            readonly_lines: 2560,
            shared_lines: 48,
            handoff_lines: 64,
        },
        WorkloadMix {
            name: "nbody",
            rounds: 4,
            accesses_per_round: 4500,
            private_frac: 0.74,
            readonly_frac: 0.22,
            private_write_frac: 0.6,
            shared_write_frac: 0.2,
            private_lines: 1400,
            readonly_lines: 3584,
            shared_lines: 32,
            handoff_lines: 80,
        },
        WorkloadMix {
            name: "dedup",
            rounds: 5,
            accesses_per_round: 3200,
            private_frac: 0.62,
            readonly_frac: 0.24,
            private_write_frac: 0.4,
            shared_write_frac: 0.5,
            private_lines: 800,
            readonly_lines: 2048,
            shared_lines: 192,
            handoff_lines: 40,
        },
    ]
}

/// Line-address layout for one run: private heaps per core, then read-only
/// input, then shared data. Regions are disjoint by construction.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Private heap base per core.
    pub private_base: Vec<u64>,
    /// Read-only region base.
    pub readonly_base: u64,
    /// Shared region base.
    pub shared_base: u64,
}

impl Layout {
    /// Build the layout for `cores` cores under `mix`.
    pub fn new(mix: &WorkloadMix, cores: usize) -> Layout {
        let mut next = 0x1000u64;
        let mut private_base = Vec::with_capacity(cores);
        for _ in 0..cores {
            private_base.push(next);
            next += mix.private_lines;
        }
        let readonly_base = next;
        next += mix.readonly_lines;
        let shared_base = next;
        Layout {
            private_base,
            readonly_base,
            shared_base,
        }
    }

    /// Total distinct lines the layout can touch: every core's private
    /// heap plus the read-only input plus the shared set. Used to pre-size
    /// the system's line-state table before a run.
    pub fn total_lines(&self, mix: &WorkloadMix) -> usize {
        (self.private_base.len() as u64 * mix.private_lines + mix.readonly_lines + mix.shared_lines)
            as usize
    }

    /// Announce the regions to a selective-mode system. The read-only
    /// region transitions through `reclassify` so copies dirtied during
    /// initialization are flushed first (MPL's initialize-then-freeze).
    pub fn classify(&self, sys: &mut System, mix: &WorkloadMix) {
        for (c, &base) in self.private_base.iter().enumerate() {
            sys.classify(base..base + mix.private_lines, Class::Private(c));
        }
        let ro: Vec<u64> = (self.readonly_base..self.readonly_base + mix.readonly_lines).collect();
        sys.reclassify(&ro, Class::ReadOnly);
        // Shared region: default class (full protocol) — no call needed.
    }
}

/// Generate one core's access stream for one round. Deterministic given
/// the seed components. Private accesses are locality-skewed (70 % to a hot
/// eighth of the heap).
pub fn round_stream(
    mix: &WorkloadMix,
    layout: &Layout,
    core: usize,
    round: usize,
    seed: u64,
) -> Vec<Access> {
    let mut out = Vec::new();
    round_stream_into(mix, layout, core, round, seed, &mut out);
    out
}

/// [`round_stream`] into a caller-provided buffer (cleared first), so the
/// hot loop reuses one allocation across every core and round.
pub fn round_stream_into(
    mix: &WorkloadMix,
    layout: &Layout,
    core: usize,
    round: usize,
    seed: u64,
    out: &mut Vec<Access>,
) {
    let mut rng = SplitMix64::new(seed ^ (core as u64) << 32 ^ (round as u64) << 16 ^ 0x9e37);
    out.clear();
    out.reserve(mix.accesses_per_round);
    let pbase = layout.private_base[core];
    // The tail of the heap is the hand-off buffer, written only in the
    // produce phase; the stream stays in the stable portion.
    let stable = mix.private_lines - mix.handoff_lines;
    let hot = (stable / 8).max(1);
    for _ in 0..mix.accesses_per_round {
        let r = rng.f64();
        if r < mix.private_frac {
            let line = if rng.chance(0.7) {
                pbase + rng.below(hot)
            } else {
                pbase + rng.below(stable.max(1))
            };
            if rng.chance(mix.private_write_frac) {
                out.push(Access::Write(line));
            } else {
                out.push(Access::Read(line));
            }
        } else if r < mix.private_frac + mix.readonly_frac {
            out.push(Access::Read(
                layout.readonly_base + rng.below(mix.readonly_lines),
            ));
        } else {
            let line = layout.shared_base + rng.below(mix.shared_lines);
            if rng.chance(mix.shared_write_frac) {
                out.push(Access::Write(line));
            } else {
                out.push(Access::Read(line));
            }
        }
    }
}

/// The line range core `c` hands to core `(c+1) % cores` at a round
/// boundary: the tail of its private heap (the hand-off buffer).
pub fn handoff_range(mix: &WorkloadMix, layout: &Layout, core: usize) -> std::ops::Range<u64> {
    let base = layout.private_base[core];
    let start = base + mix.private_lines - mix.handoff_lines.min(mix.private_lines);
    start..base + mix.private_lines
}

/// [`handoff_range`] collected (for callers that need a slice).
pub fn handoff_lines(mix: &WorkloadMix, layout: &Layout, core: usize) -> Vec<u64> {
    handoff_range(mix, layout, core).collect()
}

/// Producer phase: core `c` fills its hand-off buffer (writes).
pub fn produce_accesses(mix: &WorkloadMix, layout: &Layout, core: usize) -> Vec<Access> {
    handoff_lines(mix, layout, core)
        .into_iter()
        .map(Access::Write)
        .collect()
}

/// Consumer phase: core `c` reads the buffer produced by its predecessor.
pub fn consume_accesses(
    mix: &WorkloadMix,
    layout: &Layout,
    core: usize,
    cores: usize,
) -> Vec<Access> {
    let prev = (core + cores - 1) % cores;
    handoff_lines(mix, layout, prev)
        .into_iter()
        .map(Access::Read)
        .collect()
}

/// Pre-initialize the read-only input (writes happen *before* the region is
/// classified read-only, matching MPL's initialize-then-freeze discipline).
pub fn initialize_readonly(sys: &mut System, mix: &WorkloadMix, layout: &Layout) {
    for l in layout.readonly_base..layout.readonly_base + mix.readonly_lines {
        sys.write(0, l);
    }
}

/// Assert a mix's fractions are a valid distribution.
pub fn validate_mix(mix: &WorkloadMix) {
    assert!(mix.private_frac >= 0.0 && mix.readonly_frac >= 0.0);
    assert!(
        mix.private_frac + mix.readonly_frac <= 1.0,
        "{}: fractions exceed 1",
        mix.name
    );
    assert!(mix.handoff_lines <= mix.private_lines);
}

/// Which coherence mode a system must be in for classification calls.
pub fn needs_classification(mode: CohMode) -> bool {
    mode == CohMode::Selective
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SystemConfig;

    #[test]
    fn mixes_are_valid_distributions() {
        for m in fig7_mixes() {
            validate_mix(&m);
        }
    }

    #[test]
    fn layout_regions_are_disjoint() {
        let mix = &fig7_mixes()[0];
        let l = Layout::new(mix, 8);
        for c in 0..7 {
            assert!(l.private_base[c] + mix.private_lines <= l.private_base[c + 1]);
        }
        assert!(l.private_base[7] + mix.private_lines <= l.readonly_base);
        assert!(l.readonly_base + mix.readonly_lines <= l.shared_base);
    }

    #[test]
    fn streams_are_deterministic_and_in_region() {
        let mix = &fig7_mixes()[1];
        let layout = Layout::new(mix, 4);
        let a = round_stream(mix, &layout, 2, 1, 99);
        let b = round_stream(mix, &layout, 2, 1, 99);
        assert_eq!(a, b);
        for acc in &a {
            let line = match acc {
                Access::Read(l) | Access::Write(l) => *l,
            };
            let in_private = (0..4).any(|c| {
                line >= layout.private_base[c] && line < layout.private_base[c] + mix.private_lines
            });
            let in_ro =
                line >= layout.readonly_base && line < layout.readonly_base + mix.readonly_lines;
            let in_sh = line >= layout.shared_base && line < layout.shared_base + mix.shared_lines;
            assert!(in_private || in_ro || in_sh, "stray line {line:#x}");
            // A core only touches its own private heap.
            if in_private {
                assert!(
                    line >= layout.private_base[2]
                        && line < layout.private_base[2] + mix.private_lines
                );
            }
        }
    }

    #[test]
    fn readonly_region_never_written_in_streams() {
        let mix = &fig7_mixes()[0];
        let layout = Layout::new(mix, 4);
        for core in 0..4 {
            for round in 0..mix.rounds {
                for acc in round_stream(mix, &layout, core, round, 5) {
                    if let Access::Write(l) = acc {
                        assert!(
                            !(l >= layout.readonly_base
                                && l < layout.readonly_base + mix.readonly_lines),
                            "write to read-only line {l:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn classification_covers_the_layout() {
        let mix = &fig7_mixes()[2];
        let layout = Layout::new(mix, 4);
        let mut sys = System::new(SystemConfig::test(4, CohMode::Selective));
        initialize_readonly(&mut sys, mix, &layout);
        layout.classify(&mut sys, mix);
        // After classification, reads of read-only lines bypass the
        // directory.
        let before = sys.stats.dir_lookups;
        sys.read(3, layout.readonly_base);
        assert_eq!(sys.stats.dir_lookups, before);
    }
}
