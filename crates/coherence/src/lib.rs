//! # interweave-coherence
//!
//! Selective cache-coherence deactivation (§V-B of the paper).
//!
//! "The one-size-fits-all approach in today's memory consistency and cache
//! coherence models creates unnecessary constraints... Thread-private data
//! are tracked in the coherence protocol, even though there are no other
//! sharers for the data." The paper's prototype extends MESI with *selective
//! coherence deactivation* driven by language-level knowledge (MPL Parallel
//! ML's disentanglement guarantees which heap regions are private or
//! read-only), evaluated in the Sniper simulator on PBBS benchmarks:
//! ~46 % average speedup and ~53 % interconnect-energy reduction on a
//! dual-socket 24-core machine (Fig. 7).
//!
//! This crate is the Sniper substitute: a directory-MESI multicore
//! simulator over a 2D-mesh NoC with per-action energy accounting, plus the
//! deactivation extension:
//!
//! - [`cache`]: per-core private caches (clock-LRU).
//! - [`linehash`]: the fast deterministic line-address hasher the hot
//!   tables use in place of SipHash.
//! - [`noc`]: the mesh topology, hop latency, and flit energy.
//! - [`protocol`]: the coherence engine — full MESI and the selective
//!   extension (private regions homed at the owner's slice with no
//!   directory involvement; read-only regions served from the nearest
//!   replica; genuinely shared data unchanged).
//! - [`ordering`]: the fence half of §V-B — x86-TSO's total store order
//!   versus language-informed selective release.
//! - [`workloads`]: PBBS-archetype access-stream generators with MPL-style
//!   region annotations (private heaps, read-only inputs, shared data,
//!   producer→consumer hand-offs).
//! - [`experiment`]: the Fig. 7 runner (speedup + interconnect energy).

#![warn(missing_docs)]

pub mod cache;
pub mod experiment;
pub mod linehash;
pub mod noc;
pub mod ordering;
pub mod protocol;
pub mod workloads;

pub use protocol::{Class, CohMode, ProtocolKind, System, SystemConfig};
