//! Per-core private caches with clock (second-chance) replacement.
//!
//! The simulator models one private cache level per core (collapsing
//! L1+L2: their latency difference is not what Fig. 7 is about) holding
//! whole lines with a MESI state and a data *version* — the version lets
//! the tests prove reads observe the latest write, i.e. that the protocol
//! is actually coherent rather than just charged for.

use std::collections::{HashMap, VecDeque};

/// MESI states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: sole dirty copy.
    M,
    /// Exclusive: sole clean copy.
    E,
    /// Shared: one of possibly many clean copies.
    S,
}

/// One resident line.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Coherence state.
    pub state: Mesi,
    /// Version of the data held (monotonic per line).
    pub version: u64,
    ref_bit: bool,
}

/// A private cache of fixed line capacity.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: HashMap<u64, Entry>,
    clock: VecDeque<u64>,
    capacity: usize,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl Cache {
    /// A cache holding up to `capacity` lines.
    pub fn new(capacity: usize) -> Cache {
        assert!(capacity > 0);
        Cache {
            lines: HashMap::new(),
            clock: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a line, setting its reference bit on hit.
    pub fn probe(&mut self, line: u64) -> Option<Entry> {
        match self.lines.get_mut(&line) {
            Some(e) => {
                e.ref_bit = true;
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without statistics or reference-bit effects.
    pub fn peek(&self, line: u64) -> Option<&Entry> {
        self.lines.get(&line)
    }

    /// Change the state of a resident line (downgrade/upgrade).
    pub fn set_state(&mut self, line: u64, state: Mesi) {
        if let Some(e) = self.lines.get_mut(&line) {
            e.state = state;
        }
    }

    /// Bump the version of a resident line (a write hit) and mark M.
    pub fn write_hit(&mut self, line: u64, version: u64) {
        let e = self.lines.get_mut(&line).expect("write_hit on absent line");
        e.state = Mesi::M;
        e.version = version;
    }

    /// Remove a line (invalidation); returns its entry if present.
    pub fn invalidate(&mut self, line: u64) -> Option<Entry> {
        // The clock ring lazily skips dead entries.
        self.lines.remove(&line)
    }

    /// Insert a line, evicting by clock if full. Returns the evicted
    /// `(line, entry)` if any.
    pub fn insert(&mut self, line: u64, state: Mesi, version: u64) -> Option<(u64, Entry)> {
        let mut victim = None;
        if !self.lines.contains_key(&line) && self.lines.len() >= self.capacity {
            // Clock: skip referenced or already-invalidated entries.
            loop {
                let cand = self.clock.pop_front().expect("clock tracks residents");
                match self.lines.get_mut(&cand) {
                    None => continue, // invalidated earlier; drop lazily
                    Some(e) if e.ref_bit => {
                        e.ref_bit = false;
                        self.clock.push_back(cand);
                    }
                    Some(_) => {
                        let e = self.lines.remove(&cand).expect("present");
                        victim = Some((cand, e));
                        break;
                    }
                }
            }
        }
        let fresh = !self.lines.contains_key(&line);
        self.lines.insert(
            line,
            Entry {
                state,
                version,
                // Fresh lines start unreferenced: one probe earns clock
                // protection (second-chance discipline).
                ref_bit: false,
            },
        );
        if fresh {
            self.clock.push_back(line);
        }
        victim
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// All resident lines (for flushes).
    pub fn resident(&self) -> Vec<u64> {
        self.lines.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_hit_and_miss_statistics() {
        let mut c = Cache::new(4);
        assert!(c.probe(1).is_none());
        c.insert(1, Mesi::E, 0);
        assert!(c.probe(1).is_some());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn capacity_is_respected_with_clock_eviction() {
        let mut c = Cache::new(3);
        for l in 0..10 {
            c.insert(l, Mesi::S, 0);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn recently_referenced_lines_survive() {
        let mut c = Cache::new(3);
        c.insert(1, Mesi::S, 0);
        c.insert(2, Mesi::S, 0);
        c.insert(3, Mesi::S, 0);
        // Touch 1 so its ref bit protects it.
        c.probe(1);
        let evicted = c.insert(4, Mesi::S, 0).map(|(l, _)| l);
        assert_ne!(evicted, Some(1), "referenced line evicted first");
        assert!(c.peek(1).is_some());
    }

    #[test]
    fn eviction_returns_dirty_entry() {
        let mut c = Cache::new(1);
        c.insert(7, Mesi::E, 0);
        c.write_hit(7, 3);
        let (line, e) = c.insert(8, Mesi::E, 0).expect("eviction");
        assert_eq!(line, 7);
        assert_eq!(e.state, Mesi::M);
        assert_eq!(e.version, 3);
    }

    #[test]
    fn invalidate_then_insert_does_not_grow_clock_unboundedly() {
        let mut c = Cache::new(2);
        for round in 0..100 {
            c.insert(round, Mesi::S, 0);
            c.invalidate(round);
        }
        assert!(c.is_empty());
        // Insert two lines; the lazy clock must cope with dead entries.
        c.insert(1000, Mesi::S, 0);
        c.insert(1001, Mesi::S, 0);
        c.insert(1002, Mesi::S, 0);
        assert_eq!(c.len(), 2);
    }
}
