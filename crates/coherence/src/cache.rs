//! Per-core private caches with clock (second-chance) replacement.
//!
//! The simulator models one private cache level per core (collapsing
//! L1+L2: their latency difference is not what Fig. 7 is about) holding
//! whole lines with a MESI state and a data *version* — the version lets
//! the tests prove reads observe the latest write, i.e. that the protocol
//! is actually coherent rather than just charged for.
//!
//! Storage is a dense slot array over the workload's contiguous line
//! range (see [`Cache::reserve_dense`]): a probe is one bounds check and
//! one indexed load instead of a hash lookup. The dense side is laid out
//! as parallel primitive vectors whose all-zero initial state means
//! "empty" — `vec![0; n]` lowers to a zeroed (lazily mapped) allocation,
//! so reserving a large range costs pages only for lines actually
//! touched. Lines outside the dense range spill into a hash map, so the
//! cache behaves identically for arbitrary addresses. A side list of
//! resident lines (with swap-remove back-pointers) makes `len`,
//! `resident` and `entries` O(residents) rather than O(range).

use crate::linehash::LineMap;
use std::collections::VecDeque;

/// MESI states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    /// Modified: sole dirty copy.
    M,
    /// Exclusive: sole clean copy.
    E,
    /// Shared: one of possibly many clean copies.
    S,
}

fn state_bits(s: Mesi) -> u8 {
    match s {
        Mesi::M => 0,
        Mesi::E => 1,
        Mesi::S => 2,
    }
}

fn bits_state(b: u8) -> Mesi {
    match b & 3 {
        0 => Mesi::M,
        1 => Mesi::E,
        _ => Mesi::S,
    }
}

/// Reference bit within the dense metadata byte (low two bits: state).
const META_REF: u8 = 4;

/// One resident line.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Coherence state.
    pub state: Mesi,
    /// Version of the data held (monotonic per line).
    pub version: u64,
    ref_bit: bool,
    /// Back-pointer into the resident list.
    res_idx: u32,
}

/// A private cache of fixed line capacity.
#[derive(Debug, Clone)]
pub struct Cache {
    base: u64,
    /// Dense slot occupancy: `res_idx + 1`, `0` = empty slot. Kept as its
    /// own primitive vector so `reserve_dense` gets a zeroed allocation.
    dense_res: Vec<u32>,
    dense_ver: Vec<u64>,
    /// State bits (low 2) plus [`META_REF`].
    dense_meta: Vec<u8>,
    spill: LineMap<Entry>,
    residents: Vec<u64>,
    clock: VecDeque<u64>,
    capacity: usize,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl Cache {
    /// A cache holding up to `capacity` lines.
    pub fn new(capacity: usize) -> Cache {
        assert!(capacity > 0);
        Cache {
            base: 0,
            dense_res: Vec::new(),
            dense_ver: Vec::new(),
            dense_meta: Vec::new(),
            spill: LineMap::default(),
            residents: Vec::new(),
            clock: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Back the line range `[base, base + n)` with dense slots. Must be
    /// called before any line is inserted; lines outside the range keep
    /// working through the spill map.
    pub fn reserve_dense(&mut self, base: u64, n: usize) {
        assert!(
            self.residents.is_empty(),
            "reserve_dense on a populated cache"
        );
        self.base = base;
        self.dense_res = vec![0; n];
        self.dense_ver = vec![0; n];
        self.dense_meta = vec![0; n];
    }

    #[inline]
    fn dense_idx(&self, line: u64) -> Option<usize> {
        let off = line.wrapping_sub(self.base);
        if off < self.dense_res.len() as u64 {
            Some(off as usize)
        } else {
            None
        }
    }

    #[inline]
    fn dense_entry(&self, i: usize) -> Option<Entry> {
        let res = self.dense_res[i];
        if res == 0 {
            return None;
        }
        let meta = self.dense_meta[i];
        Some(Entry {
            state: bits_state(meta),
            version: self.dense_ver[i],
            ref_bit: meta & META_REF != 0,
            res_idx: res - 1,
        })
    }

    /// Remove `line`'s entry, patching the resident list's swap-remove
    /// back-pointer. The clock ring lazily skips removed lines.
    fn remove_line(&mut self, line: u64) -> Option<Entry> {
        let e = match self.dense_idx(line) {
            Some(i) => {
                let e = self.dense_entry(i)?;
                self.dense_res[i] = 0;
                e
            }
            None => self.spill.remove(&line)?,
        };
        let ri = e.res_idx as usize;
        self.residents.swap_remove(ri);
        if let Some(&moved) = self.residents.get(ri) {
            match self.dense_idx(moved) {
                Some(j) => self.dense_res[j] = ri as u32 + 1,
                None => {
                    self.spill
                        .get_mut(&moved)
                        .expect("resident is present")
                        .res_idx = ri as u32;
                }
            }
        }
        Some(e)
    }

    /// Look up a line, setting its reference bit on hit.
    #[inline]
    pub fn probe(&mut self, line: u64) -> Option<Entry> {
        let hit = match self.dense_idx(line) {
            Some(i) => {
                let e = self.dense_entry(i);
                if e.is_some() {
                    self.dense_meta[i] |= META_REF;
                }
                e
            }
            None => self.spill.get_mut(&line).map(|e| {
                e.ref_bit = true;
                *e
            }),
        };
        match hit {
            Some(e) => {
                self.hits += 1;
                Some(e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without statistics or reference-bit effects.
    #[inline]
    pub fn peek(&self, line: u64) -> Option<Entry> {
        match self.dense_idx(line) {
            Some(i) => self.dense_entry(i),
            None => self.spill.get(&line).copied(),
        }
    }

    /// Change the state of a resident line (downgrade/upgrade).
    pub fn set_state(&mut self, line: u64, state: Mesi) {
        match self.dense_idx(line) {
            Some(i) => {
                if self.dense_res[i] != 0 {
                    let meta = self.dense_meta[i];
                    self.dense_meta[i] = (meta & META_REF) | state_bits(state);
                }
            }
            None => {
                if let Some(e) = self.spill.get_mut(&line) {
                    e.state = state;
                }
            }
        }
    }

    /// Bump the version of a resident line (a write hit) and mark M.
    pub fn write_hit(&mut self, line: u64, version: u64) {
        match self.dense_idx(line) {
            Some(i) => {
                debug_assert_ne!(self.dense_res[i], 0, "write_hit on absent line");
                let meta = self.dense_meta[i];
                self.dense_meta[i] = (meta & META_REF) | state_bits(Mesi::M);
                self.dense_ver[i] = version;
            }
            None => {
                let e = self.spill.get_mut(&line).expect("write_hit on absent line");
                e.state = Mesi::M;
                e.version = version;
            }
        }
    }

    /// Remove a line (invalidation); returns its entry if present.
    pub fn invalidate(&mut self, line: u64) -> Option<Entry> {
        self.remove_line(line)
    }

    /// Insert a line, evicting by clock if full. Returns the evicted
    /// `(line, entry)` if any.
    pub fn insert(&mut self, line: u64, state: Mesi, version: u64) -> Option<(u64, Entry)> {
        let mut victim = None;
        let existing = self.peek(line);
        if existing.is_none() && self.residents.len() >= self.capacity {
            // Clock: skip referenced or already-invalidated entries.
            loop {
                let cand = self.clock.pop_front().expect("clock tracks residents");
                match self.peek(cand) {
                    None => continue, // invalidated earlier; drop lazily
                    Some(e) if e.ref_bit => {
                        // Second chance: clear the bit, recycle.
                        match self.dense_idx(cand) {
                            Some(i) => self.dense_meta[i] &= !META_REF,
                            None => {
                                self.spill.get_mut(&cand).expect("present").ref_bit = false;
                            }
                        }
                        self.clock.push_back(cand);
                    }
                    Some(_) => {
                        let e = self.remove_line(cand).expect("present");
                        victim = Some((cand, e));
                        break;
                    }
                }
            }
        }
        let fresh = existing.is_none();
        let res_idx = match existing {
            Some(e) => e.res_idx,
            None => {
                self.residents.push(line);
                (self.residents.len() - 1) as u32
            }
        };
        // Fresh lines start unreferenced: one probe earns clock protection
        // (second-chance discipline); re-inserts also reset the bit.
        match self.dense_idx(line) {
            Some(i) => {
                self.dense_res[i] = res_idx + 1;
                self.dense_ver[i] = version;
                self.dense_meta[i] = state_bits(state);
            }
            None => {
                self.spill.insert(
                    line,
                    Entry {
                        state,
                        version,
                        ref_bit: false,
                        res_idx,
                    },
                );
            }
        }
        if fresh {
            self.clock.push_back(line);
        }
        victim
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.residents.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.residents.is_empty()
    }

    /// All resident lines (for flushes).
    pub fn resident(&self) -> Vec<u64> {
        self.residents.clone()
    }

    /// Iterate resident `(line, entry)` pairs, in no particular order —
    /// callers that care about order (the SWMR checker) must sort.
    pub fn entries(&self) -> impl Iterator<Item = (u64, Entry)> + '_ {
        self.residents
            .iter()
            .map(|&l| (l, self.peek(l).expect("resident is present")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_hit_and_miss_statistics() {
        let mut c = Cache::new(4);
        assert!(c.probe(1).is_none());
        c.insert(1, Mesi::E, 0);
        assert!(c.probe(1).is_some());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn capacity_is_respected_with_clock_eviction() {
        let mut c = Cache::new(3);
        for l in 0..10 {
            c.insert(l, Mesi::S, 0);
        }
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn recently_referenced_lines_survive() {
        let mut c = Cache::new(3);
        c.insert(1, Mesi::S, 0);
        c.insert(2, Mesi::S, 0);
        c.insert(3, Mesi::S, 0);
        // Touch 1 so its ref bit protects it.
        c.probe(1);
        let evicted = c.insert(4, Mesi::S, 0).map(|(l, _)| l);
        assert_ne!(evicted, Some(1), "referenced line evicted first");
        assert!(c.peek(1).is_some());
    }

    #[test]
    fn eviction_returns_dirty_entry() {
        let mut c = Cache::new(1);
        c.insert(7, Mesi::E, 0);
        c.write_hit(7, 3);
        let (line, e) = c.insert(8, Mesi::E, 0).expect("eviction");
        assert_eq!(line, 7);
        assert_eq!(e.state, Mesi::M);
        assert_eq!(e.version, 3);
    }

    #[test]
    fn invalidate_then_insert_does_not_grow_clock_unboundedly() {
        let mut c = Cache::new(2);
        for round in 0..100 {
            c.insert(round, Mesi::S, 0);
            c.invalidate(round);
        }
        assert!(c.is_empty());
        // Insert two lines; the lazy clock must cope with dead entries.
        c.insert(1000, Mesi::S, 0);
        c.insert(1001, Mesi::S, 0);
        c.insert(1002, Mesi::S, 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dense_and_spill_storage_agree() {
        // Same operation sequence against a dense-backed cache and a
        // spill-only cache: externally identical at every step.
        let mut dense = Cache::new(4);
        dense.reserve_dense(100, 50);
        let mut plain = Cache::new(4);
        // Mix of in-range (100..150) and out-of-range lines.
        let ops = [120u64, 99, 120, 130, 151, 140, 145, 120, 99, 130];
        for (i, &l) in ops.iter().enumerate() {
            if i % 3 == 2 {
                assert_eq!(dense.invalidate(l).is_some(), plain.invalidate(l).is_some());
            } else {
                let ve = dense.insert(l, Mesi::E, i as u64).map(|(v, _)| v);
                let vp = plain.insert(l, Mesi::E, i as u64).map(|(v, _)| v);
                assert_eq!(ve, vp, "op {i}: divergent victim");
            }
            assert_eq!(dense.len(), plain.len(), "op {i}");
            let mut a: Vec<u64> = dense.resident();
            let mut b: Vec<u64> = plain.resident();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "op {i}");
        }
        assert_eq!(dense.hits, plain.hits);
        assert_eq!(dense.misses, plain.misses);
    }

    #[test]
    fn entries_reports_every_resident_exactly_once() {
        let mut c = Cache::new(8);
        c.reserve_dense(0, 10);
        c.insert(3, Mesi::S, 1);
        c.insert(20, Mesi::M, 2); // spill
        c.insert(5, Mesi::E, 3);
        c.invalidate(3);
        let mut got: Vec<(u64, u64)> = c.entries().map(|(l, e)| (l, e.version)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(5, 3), (20, 2)]);
    }
}
