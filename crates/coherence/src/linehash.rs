//! A fast deterministic hasher for line addresses.
//!
//! The coherence hot paths (cache probes, line-table lookups) hash one
//! `u64` line address per operation. The standard library's default
//! SipHash is DoS-resistant but costs more than the rest of the access
//! path combined; line addresses are simulator-internal, so that
//! resistance buys nothing here. This hasher finalizes a single `u64`
//! with a Murmur3/SplitMix-style mixer — a few arithmetic ops, full
//! avalanche, deterministic across runs and platforms (hash-map
//! *iteration order* still must never leak into simulation results; the
//! engine only iterates maps for invariant checks and flushes through
//! sorted or set-based views).

use std::hash::{BuildHasher, Hasher};

/// Hasher state: the mixed key (line addresses hash one `u64` write).
#[derive(Debug, Clone, Default)]
pub struct LineHasher {
    h: u64,
}

impl Hasher for LineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.h
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the u64 fast path below is the one
        // the line tables actually hit.
        for &b in bytes {
            self.h = (self.h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // SplitMix64 finalizer: ~4 ops, full avalanche.
        let mut x = v.wrapping_add(self.h).wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.h = x ^ (x >> 31);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`LineHasher`]; unseeded, so maps hash identically
/// across runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineHash;

impl BuildHasher for LineHash {
    type Hasher = LineHasher;

    #[inline]
    fn build_hasher(&self) -> LineHasher {
        LineHasher::default()
    }
}

/// A `HashMap` keyed by line address with the fast hasher.
pub type LineMap<V> = std::collections::HashMap<u64, V, LineHash>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_lines_hash_distinctly_and_deterministically() {
        let build = LineHash;
        let hash = |v: u64| {
            let mut h = build.build_hasher();
            h.write_u64(v);
            h.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for line in 0x1000u64..0x3000 {
            assert!(seen.insert(hash(line)), "collision at {line:#x}");
            assert_eq!(hash(line), hash(line));
        }
    }

    #[test]
    fn line_map_behaves_like_a_map() {
        let mut m: LineMap<u32> = LineMap::default();
        for l in 0..1000u64 {
            m.insert(l, (l * 7) as u32);
        }
        for l in 0..1000u64 {
            assert_eq!(m.get(&l), Some(&((l * 7) as u32)));
        }
        assert_eq!(m.remove(&500), Some(3500));
        assert!(!m.contains_key(&500));
    }
}
