//! The coherence engine: directory MESI plus selective deactivation.
//!
//! **Full MESI** (the baseline): every access to every line is tracked by
//! the directory at the line's home tile. Misses travel requestor → home →
//! (owner) → requestor; writes invalidate sharers; evictions notify home.
//!
//! **Selective** (§V-B): language-level region knowledge deactivates
//! coherence where it cannot matter:
//! - `Private(c)` regions (MPL thread-local heaps) are homed at core `c`'s
//!   local slice and bypass the directory entirely — no tracking state, no
//!   invalidation traffic, near-zero hop counts ("mapping primitives for
//!   on-chip data placement");
//! - `ReadOnly` regions replicate freely and are served from the nearest
//!   slice, one hop, no directory;
//! - `Shared` regions run the full protocol unchanged.
//!
//! Correctness is checked, not assumed: every line carries a version, every
//! read asserts it observed the latest version, and [`System::check_swmr`]
//! verifies the single-writer/multiple-reader invariant — used by the
//! property tests.
//!
//! All per-line protocol state (directory entry, L3 residency, ground-truth
//! version, region class) lives in one [`LineState`] record in a single
//! pre-sizable table, so an access resolves its line with one hash lookup
//! instead of consulting four parallel maps.

use crate::cache::{Cache, Entry, Mesi};
use crate::linehash::LineMap;
use crate::noc::Mesh;
use interweave_core::energy::{EnergyLedger, EnergyModel};

/// Coherence policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohMode {
    /// Hardware MESI for everything (today's stacks).
    Full,
    /// MESI + selective deactivation.
    Selective,
}

/// Base protocol family (an ablation axis: MESI's Exclusive state is
/// itself a private-data optimization — selective deactivation subsumes
/// it, which the ablation makes visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Full MESI: sole clean copies enter E and upgrade to M silently.
    Mesi,
    /// MSI: no E state; every first write pays a directory upgrade.
    Msi,
}

/// Region classification supplied by the language runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Only core `.0` accesses this data (disentangled private heap).
    Private(usize),
    /// Written never (after classification); any core may read.
    ReadOnly,
    /// Genuinely shared mutable data.
    Shared,
}

/// Access-path latencies (cycles).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Private-cache hit.
    pub l1_hit: u64,
    /// Directory bank access.
    pub dir: u64,
    /// L3 slice access.
    pub l3: u64,
    /// DRAM access.
    pub dram: u64,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            dir: 8,
            l3: 20,
            dram: 180,
        }
    }
}

/// System configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core (= tile) count.
    pub cores: usize,
    /// Private-cache capacity in lines.
    pub l1_lines: usize,
    /// Coherence policy.
    pub mode: CohMode,
    /// Base protocol family.
    pub protocol: ProtocolKind,
    /// Latencies.
    pub lat: LatencyModel,
}

impl SystemConfig {
    /// The Fig. 7 machine: 24 cores (2× 12), modest private caches.
    pub fn fig7(mode: CohMode) -> SystemConfig {
        SystemConfig {
            cores: 24,
            l1_lines: 512,
            mode,
            protocol: ProtocolKind::Mesi,
            lat: LatencyModel::default(),
        }
    }

    /// A small test machine.
    pub fn test(cores: usize, mode: CohMode) -> SystemConfig {
        SystemConfig {
            cores,
            l1_lines: 64,
            mode,
            protocol: ProtocolKind::Mesi,
            lat: LatencyModel::default(),
        }
    }
}

/// Directory entry for a Shared-class line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// In the L3/DRAM only.
    Uncached,
    /// One core holds it E or M.
    Exclusive(usize),
    /// Clean copies per the bitmask.
    Sharers(u64),
}

/// All protocol state for one line, held in the unified line table.
///
/// One record replaces what used to be four parallel maps (directory, L3
/// residency, latest version, class), so the hot access paths pay one hash
/// lookup and one write-back per miss instead of four lookups plus up to
/// four inserts. The record is packed to 24 bytes (the naive enum layout
/// is 56): the table is the sweep's biggest randomly-accessed structure,
/// and the miss paths are bound by real-CPU cache misses on it, so
/// footprint is latency. Versions are `u32` internally — round-structured
/// sweeps write any one line a few thousand times at most.
#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    /// Directory payload: owner for `Exclusive`, bitmask for `Sharers`.
    dir_bits: u64,
    /// Ground-truth latest version.
    latest32: u32,
    /// L3 contents: resident version + 1; `0` = only in DRAM (cold).
    l3p1: u32,
    /// Directory tag: 0 = Uncached, 1 = Exclusive, 2 = Sharers.
    dir_tag: u8,
    /// Region class tag: 0 = unclassified, 1 = Private, 2 = ReadOnly,
    /// 3 = Shared.
    class_tag: u8,
    /// Owner for a Private class.
    class_owner: u8,
}

impl LineState {
    /// Directory entry (meaningful for Shared-class lines).
    #[inline]
    fn dir(&self) -> Dir {
        match self.dir_tag {
            0 => Dir::Uncached,
            1 => Dir::Exclusive(self.dir_bits as usize),
            _ => Dir::Sharers(self.dir_bits),
        }
    }

    #[inline]
    fn set_dir(&mut self, d: Dir) {
        match d {
            Dir::Uncached => {
                self.dir_tag = 0;
                self.dir_bits = 0;
            }
            Dir::Exclusive(c) => {
                self.dir_tag = 1;
                self.dir_bits = c as u64;
            }
            Dir::Sharers(mask) => {
                self.dir_tag = 2;
                self.dir_bits = mask;
            }
        }
    }

    /// Ground-truth latest version.
    #[inline]
    fn latest(&self) -> u64 {
        self.latest32 as u64
    }

    #[inline]
    fn set_latest(&mut self, v: u64) {
        debug_assert!(v <= u32::MAX as u64, "version overflow on a line");
        self.latest32 = v as u32;
    }

    /// L3 contents: resident version. `None` = only in DRAM (cold).
    #[inline]
    fn l3(&self) -> Option<u64> {
        self.l3p1.checked_sub(1).map(u64::from)
    }

    #[inline]
    fn set_l3(&mut self, v: u64) {
        debug_assert!(v < u32::MAX as u64, "version overflow on a line");
        self.l3p1 = v as u32 + 1;
    }

    /// Region class, if the runtime classified this line.
    #[inline]
    fn class(&self) -> Option<Class> {
        match self.class_tag {
            0 => None,
            1 => Some(Class::Private(self.class_owner as usize)),
            2 => Some(Class::ReadOnly),
            _ => Some(Class::Shared),
        }
    }

    #[inline]
    fn set_class(&mut self, class: Class) {
        match class {
            Class::Private(owner) => {
                debug_assert!(
                    owner <= u8::MAX as usize,
                    "owner id overflows the class tag"
                );
                self.class_tag = 1;
                self.class_owner = owner as u8;
            }
            Class::ReadOnly => self.class_tag = 2,
            Class::Shared => self.class_tag = 3,
        }
    }
}

/// The unified line-state table: a dense array over the layout's
/// contiguous line range (reserved up front by sweeps whose footprint is
/// known), with a hash-map spill for addresses outside it. Absent
/// entries read as the cold [`LineState`] either way, so dense and spill
/// storage are observationally identical — the dense path just turns the
/// two map operations on every access into two array indexes.
#[derive(Debug, Default)]
struct LineTable {
    base: u64,
    dense: Vec<LineState>,
    spill: LineMap<LineState>,
}

impl LineTable {
    /// Index into the dense range, if `line` falls inside it.
    #[inline]
    fn dense_idx(&self, line: u64) -> Option<usize> {
        let off = line.wrapping_sub(self.base);
        if off < self.dense.len() as u64 {
            Some(off as usize)
        } else {
            None
        }
    }

    /// The line's state, defaulting cold.
    #[inline]
    fn get(&self, line: u64) -> LineState {
        match self.dense_idx(line) {
            Some(i) => self.dense[i],
            None => self.spill.get(&line).copied().unwrap_or_default(),
        }
    }

    /// Store the line's state.
    #[inline]
    fn set(&mut self, line: u64, st: LineState) {
        match self.dense_idx(line) {
            Some(i) => self.dense[i] = st,
            None => {
                self.spill.insert(line, st);
            }
        }
    }

    /// Mutable access, creating the cold default if absent.
    #[inline]
    fn state_mut(&mut self, line: u64) -> &mut LineState {
        match self.dense_idx(line) {
            Some(i) => &mut self.dense[i],
            None => self.spill.entry(line).or_default(),
        }
    }

    /// Advance the line's ground-truth version in place (write fast path:
    /// no full-record copy) and return the new version.
    #[inline]
    fn bump_latest(&mut self, line: u64) -> u64 {
        let st = self.state_mut(line);
        st.latest32 += 1;
        st.latest()
    }

    /// The line's class alone, without materializing the record.
    #[inline]
    fn class(&self, line: u64) -> Option<Class> {
        match self.dense_idx(line) {
            Some(i) => self.dense[i].class(),
            None => self.spill.get(&line).and_then(|st| st.class()),
        }
    }
}

/// Registry keys for [`System::publish_telemetry`], in [`CohStats`] field
/// order.
const COH_KEYS: [interweave_core::telemetry::Key; 9] = {
    use interweave_core::telemetry::{Key, Layer, Unit};
    [
        Key::new("coherence.reads", Layer::Coherence, Unit::Count),
        Key::new("coherence.writes", Layer::Coherence, Unit::Count),
        Key::new("coherence.l1_hits", Layer::Coherence, Unit::Count),
        Key::new("coherence.dir_lookups", Layer::Coherence, Unit::Count),
        Key::new("coherence.invalidations", Layer::Coherence, Unit::Count),
        Key::new("coherence.forwards", Layer::Coherence, Unit::Count),
        Key::new("coherence.writebacks", Layer::Coherence, Unit::Count),
        Key::new("coherence.dram_fetches", Layer::Coherence, Unit::Count),
        Key::new("coherence.deactivated", Layer::Coherence, Unit::Count),
    ]
};

/// Aggregate protocol statistics.
#[derive(Debug, Clone, Default)]
pub struct CohStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Private-cache hits.
    pub l1_hits: u64,
    /// Directory lookups.
    pub dir_lookups: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Owner-forwarded misses.
    pub forwards: u64,
    /// Writebacks.
    pub writebacks: u64,
    /// DRAM fetches.
    pub dram_fetches: u64,
    /// Deactivated (directory-bypassing) accesses.
    pub deactivated: u64,
}

/// The simulated multicore.
///
/// ```
/// use interweave_coherence::protocol::{Class, CohMode, System, SystemConfig};
///
/// let mut sys = System::new(SystemConfig::test(4, CohMode::Selective));
/// sys.classify(0..64, Class::Private(2));
/// sys.write(2, 10); // core 2's private data: no directory involved
/// sys.read(2, 10);
/// assert_eq!(sys.stats.dir_lookups, 0);
/// sys.check_swmr();
/// ```
pub struct System {
    /// Configuration.
    pub cfg: SystemConfig,
    /// NoC topology.
    pub mesh: Mesh,
    caches: Vec<Cache>,
    /// The unified line-state table: line address → all per-line state.
    lines: LineTable,
    emodel: EnergyModel,
    /// Energy accounting.
    pub energy: EnergyLedger,
    /// Protocol statistics.
    pub stats: CohStats,
}

impl System {
    /// Build a system.
    pub fn new(cfg: SystemConfig) -> System {
        let mesh = Mesh::for_cores(cfg.cores);
        System {
            caches: (0..cfg.cores).map(|_| Cache::new(cfg.l1_lines)).collect(),
            mesh,
            lines: LineTable::default(),
            emodel: EnergyModel::default(),
            energy: EnergyLedger::new(),
            stats: CohStats::default(),
            cfg,
        }
    }

    /// Pre-size the line-state table for `n` distinct line addresses, so a
    /// sweep whose footprint is known up front (layout sizes) never rehashes
    /// mid-run.
    pub fn reserve_lines(&mut self, n: usize) {
        self.lines
            .spill
            .reserve(n.saturating_sub(self.lines.spill.len()));
    }

    /// Back the line range `[base, base + n)` with dense storage — in the
    /// line-state table and in every core's cache: every access to it
    /// becomes an array index instead of a hash lookup. Observationally
    /// identical to the spill map (sweeps with a known contiguous layout
    /// call this instead of [`System::reserve_lines`]); any state the
    /// range already accumulated migrates over.
    pub fn reserve_dense(&mut self, base: u64, n: usize) {
        for c in &mut self.caches {
            c.reserve_dense(base, n);
        }
        let mut dense = vec![LineState::default(); n];
        self.lines.spill.retain(|&line, st| {
            let off = line.wrapping_sub(base);
            if off < n as u64 {
                dense[off as usize] = *st;
                false
            } else {
                true
            }
        });
        self.lines.base = base;
        self.lines.dense = dense;
    }

    /// Publish this system's protocol statistics into `sink`'s registry as
    /// gauges (idempotent: re-publishing overwrites with current values).
    pub fn publish_telemetry(&self, sink: &interweave_core::telemetry::Sink) {
        let s = &self.stats;
        let vals = [
            s.reads,
            s.writes,
            s.l1_hits,
            s.dir_lookups,
            s.invalidations,
            s.forwards,
            s.writebacks,
            s.dram_fetches,
            s.deactivated,
        ];
        for (key, v) in COH_KEYS.iter().zip(vals) {
            sink.gauge(key, 0, v);
        }
    }

    /// Classify a range of lines. Honoured only in `Selective` mode; the
    /// full-MESI baseline has no channel for this knowledge — that is the
    /// paper's point.
    pub fn classify(&mut self, lines: impl Iterator<Item = u64>, class: Class) {
        for l in lines {
            self.lines.state_mut(l).set_class(class);
        }
    }

    /// The line's full state, defaulting cold (uncached, DRAM-only, v0).
    #[inline]
    fn line_state(&self, line: u64) -> LineState {
        self.lines.get(line)
    }

    /// Resolve the effective class from an already-fetched state record.
    #[inline]
    fn resolve_class(&self, st: &LineState) -> Class {
        match self.cfg.mode {
            CohMode::Full => Class::Shared,
            CohMode::Selective => st.class().unwrap_or(Class::Shared),
        }
    }

    fn class_of(&self, line: u64) -> Class {
        self.resolve_class(&self.line_state(line))
    }

    #[inline]
    fn charge_msg(&mut self, hops: u32, flits: u32) {
        self.energy.charge_noc(&self.emodel, hops.max(1), flits);
    }

    #[inline]
    fn charge_dir(&mut self) {
        self.stats.dir_lookups += 1;
        self.energy.directory += self.emodel.directory_access;
    }

    #[inline]
    fn charge_l1(&mut self) {
        self.energy.caches += self.emodel.l1_access;
    }

    #[inline]
    fn charge_l3(&mut self) {
        self.energy.caches += self.emodel.l3_access;
    }

    /// Fetch a line's data at its home slice, returning `(latency, version)`
    /// and charging L3/DRAM. Operates on the caller's in-flight state
    /// record; a DRAM fetch fills the L3 in place.
    fn fetch_at_home(&mut self, st: &mut LineState) -> (u64, u64) {
        self.charge_l3();
        match st.l3() {
            Some(v) => (self.cfg.lat.l3, v),
            None => {
                self.stats.dram_fetches += 1;
                self.energy.dram += self.emodel.dram_access;
                let v = st.latest();
                st.set_l3(v);
                (self.cfg.lat.l3 + self.cfg.lat.dram, v)
            }
        }
    }

    /// Handle a cache eviction (victim from an insert). The victim is
    /// always a different line than the one being inserted, so its state is
    /// fetched and written back independently.
    fn handle_eviction(&mut self, core: usize, line: u64, e: Entry) {
        let mut st = self.line_state(line);
        match self.resolve_class(&st) {
            Class::Private(_) => {
                if e.state == Mesi::M {
                    // Writeback to the local slice: zero hops.
                    self.stats.writebacks += 1;
                    st.set_l3(e.version);
                    self.charge_msg(0, self.mesh.data_flits);
                    self.charge_l3();
                    self.lines.set(line, st);
                }
            }
            Class::ReadOnly => {} // clean replicas drop silently
            Class::Shared => {
                let home = self.mesh.home(line);
                let hops = self.mesh.hops(core, home);
                self.charge_dir();
                if e.state == Mesi::M {
                    self.stats.writebacks += 1;
                    st.set_l3(e.version);
                    self.charge_msg(hops, self.mesh.data_flits);
                    self.charge_l3();
                    st.set_dir(Dir::Uncached);
                } else {
                    // Eviction notice keeps the directory exact.
                    self.charge_msg(hops, self.mesh.control_flits);
                    st.set_dir(match st.dir() {
                        Dir::Exclusive(c) if c == core => Dir::Uncached,
                        Dir::Sharers(mask) => {
                            let m = mask & !(1 << core);
                            if m == 0 {
                                Dir::Uncached
                            } else {
                                Dir::Sharers(m)
                            }
                        }
                        other => other,
                    });
                }
                self.lines.set(line, st);
            }
        }
    }

    fn insert_line(&mut self, core: usize, line: u64, state: Mesi, version: u64) {
        if let Some((vl, ve)) = self.caches[core].insert(line, state, version) {
            self.handle_eviction(core, vl, ve);
        }
    }

    /// Read one line from `core`; returns the access latency in cycles.
    ///
    /// The hit path is small enough to inline into the sweep loops; the
    /// miss machinery stays outlined in [`System::read_miss`].
    #[inline]
    pub fn read(&mut self, core: usize, line: u64) -> u64 {
        self.stats.reads += 1;
        self.charge_l1();
        // Hits never touch the line table (the probe alone decides), so
        // the table read is deferred to the miss path.
        if let Some(e) = self.caches[core].probe(line) {
            self.stats.l1_hits += 1;
            debug_assert_eq!(
                e.version,
                self.line_state(line).latest(),
                "stale read of line {line:#x} at core {core}"
            );
            let _ = e;
            return self.cfg.lat.l1_hit;
        }
        self.read_miss(core, line)
    }

    fn read_miss(&mut self, core: usize, line: u64) -> u64 {
        // One table lookup serves the whole miss: class resolution,
        // directory, L3 and version checks all come from `st`.
        let mut st = self.line_state(line);

        let lat = match self.resolve_class(&st) {
            Class::Private(owner) => {
                debug_assert_eq!(owner, core, "disentanglement violation on {line:#x}");
                self.stats.deactivated += 1;
                // Local slice: no directory, no hops.
                let (fetch, v) = self.fetch_at_home(&mut st);
                self.charge_msg(0, self.mesh.data_flits);
                self.insert_line(core, line, Mesi::E, v);
                self.cfg.lat.l1_hit + fetch
            }
            Class::ReadOnly => {
                self.stats.deactivated += 1;
                // Nearest replica: one hop, no directory.
                let (fetch, v) = self.fetch_at_home(&mut st);
                self.charge_msg(1, self.mesh.data_flits);
                self.insert_line(core, line, Mesi::S, v);
                self.cfg.lat.l1_hit + self.mesh.latency(1) + fetch
            }
            Class::Shared => {
                let home = self.mesh.home(line);
                let req_hops = self.mesh.hops(core, home);
                self.charge_msg(req_hops, self.mesh.control_flits);
                self.charge_dir();
                let mut lat = self.cfg.lat.l1_hit + self.mesh.latency(req_hops) + self.cfg.lat.dir;
                match st.dir() {
                    Dir::Uncached => {
                        let (fetch, v) = self.fetch_at_home(&mut st);
                        lat += fetch + self.mesh.latency(req_hops);
                        self.charge_msg(req_hops, self.mesh.data_flits);
                        match self.cfg.protocol {
                            ProtocolKind::Mesi => {
                                st.set_dir(Dir::Exclusive(core));
                                self.insert_line(core, line, Mesi::E, v);
                            }
                            ProtocolKind::Msi => {
                                // No E state: sole clean copies are plain
                                // sharers, so the first write must upgrade.
                                st.set_dir(Dir::Sharers(1 << core));
                                self.insert_line(core, line, Mesi::S, v);
                            }
                        }
                    }
                    Dir::Sharers(mask) => {
                        let (fetch, v) = self.fetch_at_home(&mut st);
                        lat += fetch + self.mesh.latency(req_hops);
                        self.charge_msg(req_hops, self.mesh.data_flits);
                        st.set_dir(Dir::Sharers(mask | (1 << core)));
                        self.insert_line(core, line, Mesi::S, v);
                    }
                    Dir::Exclusive(owner) if owner == core => {
                        // The owner missed (evicted without notice cannot
                        // happen — evictions notify), so this is unreachable;
                        // treat as uncached for robustness.
                        let (fetch, v) = self.fetch_at_home(&mut st);
                        lat += fetch + self.mesh.latency(req_hops);
                        self.insert_line(core, line, Mesi::E, v);
                    }
                    Dir::Exclusive(owner) => {
                        // Forward to the owner; owner downgrades and writes
                        // back; data goes owner → requestor.
                        self.stats.forwards += 1;
                        let fwd = self.mesh.hops(home, owner);
                        let back = self.mesh.hops(owner, core);
                        self.charge_msg(fwd, self.mesh.control_flits);
                        self.charge_msg(back, self.mesh.data_flits);
                        let oe = self.caches[owner]
                            .peek(line)
                            .expect("directory says owner holds the line");
                        let v = oe.version;
                        // Downgrade + writeback to home.
                        self.caches[owner].set_state(line, Mesi::S);
                        self.stats.writebacks += 1;
                        st.set_l3(v);
                        self.charge_msg(self.mesh.hops(owner, home), self.mesh.data_flits);
                        self.charge_l3();
                        lat +=
                            self.mesh.latency(fwd) + self.cfg.lat.l1_hit + self.mesh.latency(back);
                        st.set_dir(Dir::Sharers((1 << owner) | (1 << core)));
                        self.insert_line(core, line, Mesi::S, v);
                    }
                }
                lat
            }
        };
        self.lines.set(line, st);
        if let Some(e) = self.caches[core].peek(line) {
            debug_assert_eq!(
                e.version,
                st.latest(),
                "read filled stale version for {line:#x}"
            );
        }
        lat
    }

    /// Write one line from `core`; returns the access latency in cycles.
    ///
    /// Write *hits with write permission* (any state under a deactivated
    /// private class; M or E under the full protocol) are the common case
    /// and touch only the line's version counter — they bump it in place
    /// rather than copying the whole state record out and back.
    #[inline]
    pub fn write(&mut self, core: usize, line: u64) -> u64 {
        self.stats.writes += 1;
        self.charge_l1();
        let class = match self.cfg.mode {
            CohMode::Full => Class::Shared,
            CohMode::Selective => self.lines.class(line).unwrap_or(Class::Shared),
        };
        match class {
            Class::Private(owner) => {
                debug_assert_eq!(owner, core, "disentanglement violation on {line:#x}");
                self.stats.deactivated += 1;
                if self.caches[core].probe(line).is_some() {
                    self.stats.l1_hits += 1;
                    let v = self.lines.bump_latest(line);
                    self.caches[core].write_hit(line, v);
                    self.cfg.lat.l1_hit
                } else {
                    let mut st = self.line_state(line);
                    let v = st.latest() + 1;
                    st.set_latest(v);
                    let (fetch, _) = self.fetch_at_home(&mut st);
                    self.charge_msg(0, self.mesh.data_flits);
                    self.lines.set(line, st);
                    self.insert_line(core, line, Mesi::E, v);
                    self.caches[core].write_hit(line, v);
                    self.cfg.lat.l1_hit + fetch
                }
            }
            Class::ReadOnly => panic!("write to read-only region: line {line:#x}"),
            Class::Shared => match self.caches[core].probe(line) {
                Some(e) if e.state == Mesi::M || e.state == Mesi::E => {
                    // M hit, or silent E→M upgrade.
                    self.stats.l1_hits += 1;
                    let v = self.lines.bump_latest(line);
                    self.caches[core].write_hit(line, v);
                    self.cfg.lat.l1_hit
                }
                probed => self.write_shared_slow(core, line, probed),
            },
        }
    }

    /// The non-fast-path half of a Shared-class write: an S-state upgrade
    /// or a full write miss (RFO through the directory). `probed` is the
    /// already-taken cache probe result.
    fn write_shared_slow(&mut self, core: usize, line: u64, probed: Option<Entry>) -> u64 {
        let mut st = self.line_state(line);
        let v = st.latest() + 1;
        st.set_latest(v);
        let lat = {
            let home = self.mesh.home(line);
            let req_hops = self.mesh.hops(core, home);
            match probed {
                Some(_) => {
                    // S → upgrade: invalidate other sharers via home.
                    self.stats.l1_hits += 1;
                    self.charge_msg(req_hops, self.mesh.control_flits);
                    self.charge_dir();
                    let mut lat =
                        self.cfg.lat.l1_hit + self.mesh.latency(req_hops) + self.cfg.lat.dir;
                    lat += self.invalidate_others(&st, line, core, home);
                    st.set_dir(Dir::Exclusive(core));
                    self.caches[core].write_hit(line, v);
                    lat
                }
                None => {
                    // Write miss: RFO through the directory.
                    self.charge_msg(req_hops, self.mesh.control_flits);
                    self.charge_dir();
                    let mut lat =
                        self.cfg.lat.l1_hit + self.mesh.latency(req_hops) + self.cfg.lat.dir;
                    match st.dir() {
                        Dir::Uncached => {
                            let (fetch, _) = self.fetch_at_home(&mut st);
                            lat += fetch + self.mesh.latency(req_hops);
                            self.charge_msg(req_hops, self.mesh.data_flits);
                        }
                        Dir::Sharers(_) => {
                            let (fetch, _) = self.fetch_at_home(&mut st);
                            lat += fetch + self.mesh.latency(req_hops);
                            self.charge_msg(req_hops, self.mesh.data_flits);
                            lat += self.invalidate_others(&st, line, core, home);
                        }
                        Dir::Exclusive(owner) => {
                            // Forward-invalidate: owner sends data
                            // directly and drops its copy.
                            self.stats.forwards += 1;
                            let fwd = self.mesh.hops(home, owner);
                            let back = self.mesh.hops(owner, core);
                            self.charge_msg(fwd, self.mesh.control_flits);
                            self.charge_msg(back, self.mesh.data_flits);
                            self.stats.invalidations += 1;
                            self.caches[owner].invalidate(line);
                            lat += self.mesh.latency(fwd)
                                + self.cfg.lat.l1_hit
                                + self.mesh.latency(back);
                        }
                    }
                    st.set_dir(Dir::Exclusive(core));
                    self.insert_line(core, line, Mesi::M, v);
                    lat
                }
            }
        };
        self.lines.set(line, st);
        lat
    }

    /// Invalidate every sharer of `line` other than `keep`, per the
    /// caller's in-flight directory state; returns the added latency (max
    /// invalidation round trip through `home`).
    fn invalidate_others(&mut self, st: &LineState, line: u64, keep: usize, home: usize) -> u64 {
        let mut max_rtt = 0u64;
        if let Dir::Sharers(mask) = st.dir() {
            for c in 0..self.cfg.cores {
                if c != keep && mask & (1 << c) != 0 {
                    self.stats.invalidations += 1;
                    let h = self.mesh.hops(home, c);
                    self.charge_msg(h, self.mesh.control_flits); // inv
                    self.charge_msg(h, self.mesh.control_flits); // ack
                    max_rtt = max_rtt.max(2 * self.mesh.latency(h));
                    self.caches[c].invalidate(line);
                }
            }
        }
        max_rtt
    }

    /// Flush one core's copy of `line` (if any) during reclassification,
    /// charging the writeback when it was dirty. Returns the cycles added.
    fn flush_for_reclassify(&mut self, line: u64, c: usize, old: Class, st: &mut LineState) -> u64 {
        if let Some(e) = self.caches[c].invalidate(line) {
            if e.state == Mesi::M {
                self.stats.writebacks += 1;
                st.set_l3(e.version);
                let hops = match old {
                    Class::Private(_) => 0,
                    _ => self.mesh.hops(c, self.mesh.home(line)),
                };
                self.charge_msg(hops, self.mesh.data_flits);
                self.charge_l3();
                return self.mesh.latency(hops) + self.cfg.lat.l3;
            }
        }
        0
    }

    /// Selective-mode region hand-off: flush `lines` everywhere and assign
    /// a new class (e.g. a producer's private heap becoming the consumer's,
    /// or becoming read-only at a join). Returns the cycles charged.
    ///
    /// Only the caches that can actually hold a copy are touched: the
    /// owner for a private line (disentanglement: nobody else ever
    /// accessed it), the directory's holder set for a shared line
    /// (eviction notices keep it exact), every core for read-only
    /// replicas (unhomed, so untracked). The flush order is ascending
    /// core id in every case — identical to a full scan.
    pub fn reclassify(&mut self, lines: &[u64], new_class: Class) -> u64 {
        let mut cost = 0u64;
        for &line in lines {
            let mut st = self.line_state(line);
            let old = self.resolve_class(&st);
            match old {
                Class::Private(owner) => {
                    #[cfg(debug_assertions)]
                    for c in 0..self.cfg.cores {
                        debug_assert!(
                            c == owner || self.caches[c].peek(line).is_none(),
                            "private line {line:#x} cached outside owner {owner}"
                        );
                    }
                    cost += self.flush_for_reclassify(line, owner, old, &mut st);
                }
                Class::Shared => match st.dir() {
                    Dir::Uncached => {}
                    Dir::Exclusive(c) => {
                        cost += self.flush_for_reclassify(line, c, old, &mut st);
                    }
                    Dir::Sharers(mask) => {
                        for c in 0..self.cfg.cores {
                            if mask & (1 << c) != 0 {
                                cost += self.flush_for_reclassify(line, c, old, &mut st);
                            }
                        }
                    }
                },
                Class::ReadOnly => {
                    for c in 0..self.cfg.cores {
                        cost += self.flush_for_reclassify(line, c, old, &mut st);
                    }
                }
            }
            st.set_dir(Dir::Uncached);
            st.set_class(new_class);
            self.lines.set(line, st);
        }
        cost
    }

    /// Verify the single-writer/multiple-reader invariant and directory
    /// consistency for Shared-class lines. Panics on violation.
    pub fn check_swmr(&self) {
        // One sorted sweep over every resident (line, core, state) row,
        // grouped by line. The per-line holder sets are identical to probing
        // each cache per line, but the cost is one iteration plus a sort
        // instead of residents × cores hash lookups.
        let mut rows: Vec<(u64, usize, Mesi)> = Vec::new();
        for (ci, c) in self.caches.iter().enumerate() {
            rows.extend(c.entries().map(|(l, e)| (l, ci, e.state)));
        }
        rows.sort_unstable_by_key(|&(l, c, _)| (l, c));
        let mut i = 0;
        while i < rows.len() {
            let line = rows[i].0;
            let mut j = i;
            while j < rows.len() && rows[j].0 == line {
                j += 1;
            }
            let group = &rows[i..j];
            i = j;
            if self.class_of(line) != Class::Shared {
                continue;
            }
            let mut exclusive_holders = Vec::new();
            let mut shared_holders = Vec::new();
            for &(_, ci, state) in group {
                match state {
                    Mesi::M | Mesi::E => exclusive_holders.push(ci),
                    Mesi::S => shared_holders.push(ci),
                }
            }
            assert!(
                exclusive_holders.len() <= 1,
                "line {line:#x}: multiple exclusive holders {exclusive_holders:?}"
            );
            let dir = self.line_state(line).dir();
            if let Some(&x) = exclusive_holders.first() {
                assert!(
                    shared_holders.is_empty(),
                    "line {line:#x}: exclusive at {x} with sharers {shared_holders:?}"
                );
                assert_eq!(
                    dir,
                    Dir::Exclusive(x),
                    "line {line:#x}: directory out of sync with exclusive holder"
                );
            }
            if let Dir::Sharers(mask) = dir {
                for &s in &shared_holders {
                    assert!(
                        mask & (1 << s) != 0,
                        "line {line:#x}: sharer {s} missing from directory"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(mode: CohMode) -> System {
        System::new(SystemConfig::test(4, mode))
    }

    #[test]
    fn read_then_hit() {
        let mut s = sys(CohMode::Full);
        let cold = s.read(0, 100);
        let hit = s.read(0, 100);
        assert!(cold > hit);
        assert_eq!(hit, s.cfg.lat.l1_hit);
        s.check_swmr();
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut s = sys(CohMode::Full);
        s.read(0, 7);
        s.read(1, 7);
        s.read(2, 7);
        s.check_swmr();
        let _ = s.write(3, 7);
        assert!(s.stats.invalidations >= 2);
        s.check_swmr();
        // Reader 0 must re-miss and see the new version.
        let lat = s.read(0, 7);
        assert!(lat > s.cfg.lat.l1_hit);
        s.check_swmr();
    }

    #[test]
    fn modified_line_forwards_to_reader() {
        let mut s = sys(CohMode::Full);
        s.write(1, 42);
        let before = s.stats.forwards;
        s.read(2, 42);
        assert_eq!(s.stats.forwards, before + 1);
        s.check_swmr();
    }

    #[test]
    fn e_to_m_upgrade_is_silent() {
        let mut s = sys(CohMode::Full);
        s.read(0, 9); // E (no other sharers)
        let invs = s.stats.invalidations;
        let lat = s.write(0, 9);
        assert_eq!(lat, s.cfg.lat.l1_hit);
        assert_eq!(s.stats.invalidations, invs);
        s.check_swmr();
    }

    #[test]
    fn private_lines_bypass_directory_in_selective_mode() {
        let mut s = sys(CohMode::Selective);
        s.classify(0..32, Class::Private(2));
        for l in 0..32 {
            s.write(2, l);
            s.read(2, l);
        }
        assert_eq!(s.stats.dir_lookups, 0);
        assert_eq!(s.stats.deactivated, 32); // the 32 write misses (reads hit)
    }

    #[test]
    fn full_mode_ignores_classification() {
        let mut s = sys(CohMode::Full);
        s.classify(0..32, Class::Private(2));
        s.write(2, 0);
        assert!(s.stats.dir_lookups > 0);
        assert_eq!(s.stats.deactivated, 0);
    }

    #[test]
    #[should_panic(expected = "read-only region")]
    fn writing_readonly_region_panics() {
        let mut s = sys(CohMode::Selective);
        s.classify(10..11, Class::ReadOnly);
        s.write(0, 10);
    }

    #[test]
    fn readonly_reads_are_cheap_and_untracked() {
        let mut s = sys(CohMode::Selective);
        s.classify(100..110, Class::ReadOnly);
        for c in 0..4 {
            for l in 100..110 {
                s.read(c, l);
            }
        }
        assert_eq!(s.stats.dir_lookups, 0);
    }

    #[test]
    fn reclassify_hand_off_preserves_data() {
        let mut s = sys(CohMode::Selective);
        s.classify(50..58, Class::Private(0));
        for l in 50..58 {
            s.write(0, l);
        }
        // Hand the region to core 1.
        let cost = s.reclassify(&(50..58).collect::<Vec<_>>(), Class::Private(1));
        assert!(cost > 0, "flush of dirty lines must cost something");
        for l in 50..58 {
            // The debug assert inside read() verifies version freshness.
            s.read(1, l);
        }
    }

    #[test]
    fn selective_is_faster_and_cooler_for_private_data() {
        let run = |mode| {
            let mut s = sys(mode);
            s.classify(0..256, Class::Private(1));
            let mut cycles = 0;
            for rep in 0..4 {
                for l in 0..256 {
                    cycles += s.write(1, l);
                    cycles += s.read(1, l);
                }
                let _ = rep;
            }
            (cycles, s.energy.interconnect.get())
        };
        let (full_cyc, full_e) = run(CohMode::Full);
        let (sel_cyc, sel_e) = run(CohMode::Selective);
        assert!(sel_cyc < full_cyc, "{sel_cyc} vs {full_cyc}");
        assert!(sel_e < full_e, "{sel_e} vs {full_e}");
    }

    #[test]
    fn capacity_evictions_keep_directory_consistent() {
        let mut s = System::new(SystemConfig {
            cores: 4,
            l1_lines: 8,
            mode: CohMode::Full,
            protocol: ProtocolKind::Mesi,
            lat: LatencyModel::default(),
        });
        // Stream far beyond capacity with interleaved sharing.
        for l in 0..100u64 {
            s.write(0, l);
            s.read(1, l);
        }
        s.check_swmr();
        // Re-read everything; versions must be correct (debug asserts).
        for l in 0..100u64 {
            s.read(2, l);
        }
        s.check_swmr();
    }

    #[test]
    fn msi_pays_an_upgrade_where_mesi_upgrades_silently() {
        // Read-then-write private data: MESI's E state makes the write a
        // cache hit; MSI must go back to the directory.
        let run = |protocol| {
            let mut s = System::new(SystemConfig {
                cores: 4,
                l1_lines: 64,
                mode: CohMode::Full,
                protocol,
                lat: LatencyModel::default(),
            });
            let mut cycles = 0u64;
            for l in 0..32u64 {
                cycles += s.read(1, l);
                cycles += s.write(1, l);
            }
            (cycles, s.stats.dir_lookups)
        };
        let (mesi_cyc, mesi_dir) = run(ProtocolKind::Mesi);
        let (msi_cyc, msi_dir) = run(ProtocolKind::Msi);
        assert!(msi_cyc > mesi_cyc, "msi {msi_cyc} vs mesi {mesi_cyc}");
        assert!(msi_dir > mesi_dir);
    }

    #[test]
    fn msi_still_satisfies_swmr_and_freshness() {
        let mut s = System::new(SystemConfig {
            cores: 4,
            l1_lines: 16,
            mode: CohMode::Full,
            protocol: ProtocolKind::Msi,
            lat: LatencyModel::default(),
        });
        for i in 0..200u64 {
            let core = (i % 4) as usize;
            if i % 3 == 0 {
                s.write(core, i % 24);
            } else {
                s.read(core, i % 24);
            }
        }
        s.check_swmr();
    }

    #[test]
    fn selective_deactivation_subsumes_the_e_state_for_private_data() {
        // Under Selective, private data bypasses the protocol entirely, so
        // MSI-vs-MESI stops mattering for it.
        let run = |protocol| {
            let mut s = System::new(SystemConfig {
                cores: 2,
                l1_lines: 64,
                mode: CohMode::Selective,
                protocol,
                lat: LatencyModel::default(),
            });
            s.classify(0..32, Class::Private(0));
            let mut cycles = 0u64;
            for l in 0..32u64 {
                cycles += s.read(0, l);
                cycles += s.write(0, l);
            }
            cycles
        };
        assert_eq!(run(ProtocolKind::Mesi), run(ProtocolKind::Msi));
    }

    #[test]
    fn migratory_pattern_is_expensive_under_full_mesi() {
        // Producer writes, consumer reads, repeatedly: every round is a
        // forward + invalidate dance.
        let mut s = sys(CohMode::Full);
        for round in 0..10 {
            for l in 0..16 {
                s.write(0, l);
            }
            for l in 0..16 {
                s.read(1, l);
            }
            let _ = round;
        }
        assert!(s.stats.forwards >= 16, "forwards {}", s.stats.forwards);
        assert!(s.stats.invalidations > 0);
        s.check_swmr();
    }

    #[test]
    fn reserve_lines_changes_no_observable_behavior() {
        let run = |reserve: bool| {
            let mut s = sys(CohMode::Full);
            if reserve {
                s.reserve_lines(4096);
            }
            let mut cycles = 0u64;
            for i in 0..500u64 {
                let core = (i % 4) as usize;
                if i % 3 == 0 {
                    cycles += s.write(core, i % 96);
                } else {
                    cycles += s.read(core, i % 96);
                }
            }
            (cycles, s.stats.invalidations, s.stats.dram_fetches)
        };
        assert_eq!(run(false), run(true));
    }
}
