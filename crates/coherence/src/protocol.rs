//! The coherence engine: directory MESI plus selective deactivation.
//!
//! **Full MESI** (the baseline): every access to every line is tracked by
//! the directory at the line's home tile. Misses travel requestor → home →
//! (owner) → requestor; writes invalidate sharers; evictions notify home.
//!
//! **Selective** (§V-B): language-level region knowledge deactivates
//! coherence where it cannot matter:
//! - `Private(c)` regions (MPL thread-local heaps) are homed at core `c`'s
//!   local slice and bypass the directory entirely — no tracking state, no
//!   invalidation traffic, near-zero hop counts ("mapping primitives for
//!   on-chip data placement");
//! - `ReadOnly` regions replicate freely and are served from the nearest
//!   slice, one hop, no directory;
//! - `Shared` regions run the full protocol unchanged.
//!
//! Correctness is checked, not assumed: every line carries a version, every
//! read asserts it observed the latest version, and [`System::check_swmr`]
//! verifies the single-writer/multiple-reader invariant — used by the
//! property tests.
//!
//! All per-line protocol state (directory entry, L3 residency, ground-truth
//! version, region class) lives in one [`LineState`] record in a single
//! pre-sizable table, so an access resolves its line with one hash lookup
//! instead of consulting four parallel maps.

use crate::cache::{Cache, Entry, Mesi};
use crate::noc::Mesh;
use interweave_core::energy::{EnergyLedger, EnergyModel};
use std::collections::HashMap;

/// Coherence policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohMode {
    /// Hardware MESI for everything (today's stacks).
    Full,
    /// MESI + selective deactivation.
    Selective,
}

/// Base protocol family (an ablation axis: MESI's Exclusive state is
/// itself a private-data optimization — selective deactivation subsumes
/// it, which the ablation makes visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Full MESI: sole clean copies enter E and upgrade to M silently.
    Mesi,
    /// MSI: no E state; every first write pays a directory upgrade.
    Msi,
}

/// Region classification supplied by the language runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Only core `.0` accesses this data (disentangled private heap).
    Private(usize),
    /// Written never (after classification); any core may read.
    ReadOnly,
    /// Genuinely shared mutable data.
    Shared,
}

/// Access-path latencies (cycles).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Private-cache hit.
    pub l1_hit: u64,
    /// Directory bank access.
    pub dir: u64,
    /// L3 slice access.
    pub l3: u64,
    /// DRAM access.
    pub dram: u64,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            l1_hit: 2,
            dir: 8,
            l3: 20,
            dram: 180,
        }
    }
}

/// System configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core (= tile) count.
    pub cores: usize,
    /// Private-cache capacity in lines.
    pub l1_lines: usize,
    /// Coherence policy.
    pub mode: CohMode,
    /// Base protocol family.
    pub protocol: ProtocolKind,
    /// Latencies.
    pub lat: LatencyModel,
}

impl SystemConfig {
    /// The Fig. 7 machine: 24 cores (2× 12), modest private caches.
    pub fn fig7(mode: CohMode) -> SystemConfig {
        SystemConfig {
            cores: 24,
            l1_lines: 512,
            mode,
            protocol: ProtocolKind::Mesi,
            lat: LatencyModel::default(),
        }
    }

    /// A small test machine.
    pub fn test(cores: usize, mode: CohMode) -> SystemConfig {
        SystemConfig {
            cores,
            l1_lines: 64,
            mode,
            protocol: ProtocolKind::Mesi,
            lat: LatencyModel::default(),
        }
    }
}

/// Directory entry for a Shared-class line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// In the L3/DRAM only.
    Uncached,
    /// One core holds it E or M.
    Exclusive(usize),
    /// Clean copies per the bitmask.
    Sharers(u64),
}

/// All protocol state for one line, held in the unified line table.
///
/// One record replaces what used to be four parallel maps (directory, L3
/// residency, latest version, class), so the hot access paths pay one hash
/// lookup and one write-back per miss instead of four lookups plus up to
/// four inserts.
#[derive(Debug, Clone, Copy)]
struct LineState {
    /// Directory entry (meaningful for Shared-class lines).
    dir: Dir,
    /// L3 contents: resident version. `None` = only in DRAM (cold).
    l3: Option<u64>,
    /// Ground-truth latest version.
    latest: u64,
    /// Region class, if the runtime classified this line.
    class: Option<Class>,
}

impl Default for LineState {
    fn default() -> LineState {
        LineState {
            dir: Dir::Uncached,
            l3: None,
            latest: 0,
            class: None,
        }
    }
}

/// Registry keys for [`System::publish_telemetry`], in [`CohStats`] field
/// order.
const COH_KEYS: [interweave_core::telemetry::Key; 9] = {
    use interweave_core::telemetry::{Key, Layer, Unit};
    [
        Key::new("coherence.reads", Layer::Coherence, Unit::Count),
        Key::new("coherence.writes", Layer::Coherence, Unit::Count),
        Key::new("coherence.l1_hits", Layer::Coherence, Unit::Count),
        Key::new("coherence.dir_lookups", Layer::Coherence, Unit::Count),
        Key::new("coherence.invalidations", Layer::Coherence, Unit::Count),
        Key::new("coherence.forwards", Layer::Coherence, Unit::Count),
        Key::new("coherence.writebacks", Layer::Coherence, Unit::Count),
        Key::new("coherence.dram_fetches", Layer::Coherence, Unit::Count),
        Key::new("coherence.deactivated", Layer::Coherence, Unit::Count),
    ]
};

/// Aggregate protocol statistics.
#[derive(Debug, Clone, Default)]
pub struct CohStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Private-cache hits.
    pub l1_hits: u64,
    /// Directory lookups.
    pub dir_lookups: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Owner-forwarded misses.
    pub forwards: u64,
    /// Writebacks.
    pub writebacks: u64,
    /// DRAM fetches.
    pub dram_fetches: u64,
    /// Deactivated (directory-bypassing) accesses.
    pub deactivated: u64,
}

/// The simulated multicore.
///
/// ```
/// use interweave_coherence::protocol::{Class, CohMode, System, SystemConfig};
///
/// let mut sys = System::new(SystemConfig::test(4, CohMode::Selective));
/// sys.classify(0..64, Class::Private(2));
/// sys.write(2, 10); // core 2's private data: no directory involved
/// sys.read(2, 10);
/// assert_eq!(sys.stats.dir_lookups, 0);
/// sys.check_swmr();
/// ```
pub struct System {
    /// Configuration.
    pub cfg: SystemConfig,
    /// NoC topology.
    pub mesh: Mesh,
    caches: Vec<Cache>,
    /// The unified line-state table: line address → all per-line state.
    lines: HashMap<u64, LineState>,
    emodel: EnergyModel,
    /// Energy accounting.
    pub energy: EnergyLedger,
    /// Protocol statistics.
    pub stats: CohStats,
}

impl System {
    /// Build a system.
    pub fn new(cfg: SystemConfig) -> System {
        let mesh = Mesh::for_cores(cfg.cores);
        System {
            caches: (0..cfg.cores).map(|_| Cache::new(cfg.l1_lines)).collect(),
            mesh,
            lines: HashMap::new(),
            emodel: EnergyModel::default(),
            energy: EnergyLedger::new(),
            stats: CohStats::default(),
            cfg,
        }
    }

    /// Pre-size the line-state table for `n` distinct line addresses, so a
    /// sweep whose footprint is known up front (layout sizes) never rehashes
    /// mid-run.
    pub fn reserve_lines(&mut self, n: usize) {
        self.lines.reserve(n.saturating_sub(self.lines.len()));
    }

    /// Publish this system's protocol statistics into `sink`'s registry as
    /// gauges (idempotent: re-publishing overwrites with current values).
    pub fn publish_telemetry(&self, sink: &interweave_core::telemetry::Sink) {
        let s = &self.stats;
        let vals = [
            s.reads,
            s.writes,
            s.l1_hits,
            s.dir_lookups,
            s.invalidations,
            s.forwards,
            s.writebacks,
            s.dram_fetches,
            s.deactivated,
        ];
        for (key, v) in COH_KEYS.iter().zip(vals) {
            sink.gauge(key, 0, v);
        }
    }

    /// Classify a range of lines. Honoured only in `Selective` mode; the
    /// full-MESI baseline has no channel for this knowledge — that is the
    /// paper's point.
    pub fn classify(&mut self, lines: impl Iterator<Item = u64>, class: Class) {
        for l in lines {
            self.lines.entry(l).or_default().class = Some(class);
        }
    }

    /// The line's full state, defaulting cold (uncached, DRAM-only, v0).
    #[inline]
    fn line_state(&self, line: u64) -> LineState {
        self.lines.get(&line).copied().unwrap_or_default()
    }

    /// Resolve the effective class from an already-fetched state record.
    #[inline]
    fn resolve_class(&self, st: &LineState) -> Class {
        match self.cfg.mode {
            CohMode::Full => Class::Shared,
            CohMode::Selective => st.class.unwrap_or(Class::Shared),
        }
    }

    fn class_of(&self, line: u64) -> Class {
        self.resolve_class(&self.line_state(line))
    }

    fn charge_msg(&mut self, hops: u32, flits: u32) {
        self.energy.charge_noc(&self.emodel, hops.max(1), flits);
    }

    fn charge_dir(&mut self) {
        self.stats.dir_lookups += 1;
        self.energy.directory += self.emodel.directory_access;
    }

    fn charge_l1(&mut self) {
        self.energy.caches += self.emodel.l1_access;
    }

    fn charge_l3(&mut self) {
        self.energy.caches += self.emodel.l3_access;
    }

    /// Fetch a line's data at its home slice, returning `(latency, version)`
    /// and charging L3/DRAM. Operates on the caller's in-flight state
    /// record; a DRAM fetch fills the L3 in place.
    fn fetch_at_home(&mut self, st: &mut LineState) -> (u64, u64) {
        self.charge_l3();
        match st.l3 {
            Some(v) => (self.cfg.lat.l3, v),
            None => {
                self.stats.dram_fetches += 1;
                self.energy.dram += self.emodel.dram_access;
                let v = st.latest;
                st.l3 = Some(v);
                (self.cfg.lat.l3 + self.cfg.lat.dram, v)
            }
        }
    }

    /// Handle a cache eviction (victim from an insert). The victim is
    /// always a different line than the one being inserted, so its state is
    /// fetched and written back independently.
    fn handle_eviction(&mut self, core: usize, line: u64, e: Entry) {
        let mut st = self.line_state(line);
        match self.resolve_class(&st) {
            Class::Private(_) => {
                if e.state == Mesi::M {
                    // Writeback to the local slice: zero hops.
                    self.stats.writebacks += 1;
                    st.l3 = Some(e.version);
                    self.charge_msg(0, self.mesh.data_flits);
                    self.charge_l3();
                    self.lines.insert(line, st);
                }
            }
            Class::ReadOnly => {} // clean replicas drop silently
            Class::Shared => {
                let home = self.mesh.home(line);
                let hops = self.mesh.hops(core, home);
                self.charge_dir();
                if e.state == Mesi::M {
                    self.stats.writebacks += 1;
                    st.l3 = Some(e.version);
                    self.charge_msg(hops, self.mesh.data_flits);
                    self.charge_l3();
                    st.dir = Dir::Uncached;
                } else {
                    // Eviction notice keeps the directory exact.
                    self.charge_msg(hops, self.mesh.control_flits);
                    st.dir = match st.dir {
                        Dir::Exclusive(c) if c == core => Dir::Uncached,
                        Dir::Sharers(mask) => {
                            let m = mask & !(1 << core);
                            if m == 0 {
                                Dir::Uncached
                            } else {
                                Dir::Sharers(m)
                            }
                        }
                        other => other,
                    };
                }
                self.lines.insert(line, st);
            }
        }
    }

    fn insert_line(&mut self, core: usize, line: u64, state: Mesi, version: u64) {
        if let Some((vl, ve)) = self.caches[core].insert(line, state, version) {
            self.handle_eviction(core, vl, ve);
        }
    }

    /// Read one line from `core`; returns the access latency in cycles.
    pub fn read(&mut self, core: usize, line: u64) -> u64 {
        self.stats.reads += 1;
        self.charge_l1();
        // One table lookup serves the whole access: class resolution,
        // directory, L3 and version checks all come from `st`.
        let mut st = self.line_state(line);
        if let Some(e) = self.caches[core].probe(line) {
            self.stats.l1_hits += 1;
            debug_assert_eq!(
                e.version, st.latest,
                "stale read of line {line:#x} at core {core}"
            );
            return self.cfg.lat.l1_hit;
        }

        let lat = match self.resolve_class(&st) {
            Class::Private(owner) => {
                debug_assert_eq!(owner, core, "disentanglement violation on {line:#x}");
                self.stats.deactivated += 1;
                // Local slice: no directory, no hops.
                let (fetch, v) = self.fetch_at_home(&mut st);
                self.charge_msg(0, self.mesh.data_flits);
                self.insert_line(core, line, Mesi::E, v);
                self.cfg.lat.l1_hit + fetch
            }
            Class::ReadOnly => {
                self.stats.deactivated += 1;
                // Nearest replica: one hop, no directory.
                let (fetch, v) = self.fetch_at_home(&mut st);
                self.charge_msg(1, self.mesh.data_flits);
                self.insert_line(core, line, Mesi::S, v);
                self.cfg.lat.l1_hit + self.mesh.latency(1) + fetch
            }
            Class::Shared => {
                let home = self.mesh.home(line);
                let req_hops = self.mesh.hops(core, home);
                self.charge_msg(req_hops, self.mesh.control_flits);
                self.charge_dir();
                let mut lat = self.cfg.lat.l1_hit + self.mesh.latency(req_hops) + self.cfg.lat.dir;
                match st.dir {
                    Dir::Uncached => {
                        let (fetch, v) = self.fetch_at_home(&mut st);
                        lat += fetch + self.mesh.latency(req_hops);
                        self.charge_msg(req_hops, self.mesh.data_flits);
                        match self.cfg.protocol {
                            ProtocolKind::Mesi => {
                                st.dir = Dir::Exclusive(core);
                                self.insert_line(core, line, Mesi::E, v);
                            }
                            ProtocolKind::Msi => {
                                // No E state: sole clean copies are plain
                                // sharers, so the first write must upgrade.
                                st.dir = Dir::Sharers(1 << core);
                                self.insert_line(core, line, Mesi::S, v);
                            }
                        }
                    }
                    Dir::Sharers(mask) => {
                        let (fetch, v) = self.fetch_at_home(&mut st);
                        lat += fetch + self.mesh.latency(req_hops);
                        self.charge_msg(req_hops, self.mesh.data_flits);
                        st.dir = Dir::Sharers(mask | (1 << core));
                        self.insert_line(core, line, Mesi::S, v);
                    }
                    Dir::Exclusive(owner) if owner == core => {
                        // The owner missed (evicted without notice cannot
                        // happen — evictions notify), so this is unreachable;
                        // treat as uncached for robustness.
                        let (fetch, v) = self.fetch_at_home(&mut st);
                        lat += fetch + self.mesh.latency(req_hops);
                        self.insert_line(core, line, Mesi::E, v);
                    }
                    Dir::Exclusive(owner) => {
                        // Forward to the owner; owner downgrades and writes
                        // back; data goes owner → requestor.
                        self.stats.forwards += 1;
                        let fwd = self.mesh.hops(home, owner);
                        let back = self.mesh.hops(owner, core);
                        self.charge_msg(fwd, self.mesh.control_flits);
                        self.charge_msg(back, self.mesh.data_flits);
                        let oe = self.caches[owner]
                            .peek(line)
                            .copied()
                            .expect("directory says owner holds the line");
                        let v = oe.version;
                        // Downgrade + writeback to home.
                        self.caches[owner].set_state(line, Mesi::S);
                        self.stats.writebacks += 1;
                        st.l3 = Some(v);
                        self.charge_msg(self.mesh.hops(owner, home), self.mesh.data_flits);
                        self.charge_l3();
                        lat +=
                            self.mesh.latency(fwd) + self.cfg.lat.l1_hit + self.mesh.latency(back);
                        st.dir = Dir::Sharers((1 << owner) | (1 << core));
                        self.insert_line(core, line, Mesi::S, v);
                    }
                }
                lat
            }
        };
        self.lines.insert(line, st);
        if let Some(e) = self.caches[core].peek(line) {
            debug_assert_eq!(
                e.version, st.latest,
                "read filled stale version for {line:#x}"
            );
        }
        lat
    }

    /// Write one line from `core`; returns the access latency in cycles.
    pub fn write(&mut self, core: usize, line: u64) -> u64 {
        self.stats.writes += 1;
        let mut st = self.line_state(line);
        let v = st.latest + 1;
        st.latest = v;
        self.charge_l1();

        let lat = match self.resolve_class(&st) {
            Class::Private(owner) => {
                debug_assert_eq!(owner, core, "disentanglement violation on {line:#x}");
                self.stats.deactivated += 1;
                if self.caches[core].probe(line).is_some() {
                    self.stats.l1_hits += 1;
                    self.caches[core].write_hit(line, v);
                    self.cfg.lat.l1_hit
                } else {
                    let (fetch, _) = self.fetch_at_home(&mut st);
                    self.charge_msg(0, self.mesh.data_flits);
                    self.insert_line(core, line, Mesi::E, v);
                    self.caches[core].write_hit(line, v);
                    self.cfg.lat.l1_hit + fetch
                }
            }
            Class::ReadOnly => panic!("write to read-only region: line {line:#x}"),
            Class::Shared => {
                let home = self.mesh.home(line);
                let req_hops = self.mesh.hops(core, home);
                match self.caches[core].probe(line) {
                    Some(e) if e.state == Mesi::M => {
                        self.stats.l1_hits += 1;
                        self.caches[core].write_hit(line, v);
                        self.cfg.lat.l1_hit
                    }
                    Some(e) if e.state == Mesi::E => {
                        // Silent E→M upgrade.
                        self.stats.l1_hits += 1;
                        self.caches[core].write_hit(line, v);
                        self.cfg.lat.l1_hit
                    }
                    Some(_) => {
                        // S → upgrade: invalidate other sharers via home.
                        self.stats.l1_hits += 1;
                        self.charge_msg(req_hops, self.mesh.control_flits);
                        self.charge_dir();
                        let mut lat =
                            self.cfg.lat.l1_hit + self.mesh.latency(req_hops) + self.cfg.lat.dir;
                        lat += self.invalidate_others(&st, line, core, home);
                        st.dir = Dir::Exclusive(core);
                        self.caches[core].write_hit(line, v);
                        lat
                    }
                    None => {
                        // Write miss: RFO through the directory.
                        self.charge_msg(req_hops, self.mesh.control_flits);
                        self.charge_dir();
                        let mut lat =
                            self.cfg.lat.l1_hit + self.mesh.latency(req_hops) + self.cfg.lat.dir;
                        match st.dir {
                            Dir::Uncached => {
                                let (fetch, _) = self.fetch_at_home(&mut st);
                                lat += fetch + self.mesh.latency(req_hops);
                                self.charge_msg(req_hops, self.mesh.data_flits);
                            }
                            Dir::Sharers(_) => {
                                let (fetch, _) = self.fetch_at_home(&mut st);
                                lat += fetch + self.mesh.latency(req_hops);
                                self.charge_msg(req_hops, self.mesh.data_flits);
                                lat += self.invalidate_others(&st, line, core, home);
                            }
                            Dir::Exclusive(owner) => {
                                // Forward-invalidate: owner sends data
                                // directly and drops its copy.
                                self.stats.forwards += 1;
                                let fwd = self.mesh.hops(home, owner);
                                let back = self.mesh.hops(owner, core);
                                self.charge_msg(fwd, self.mesh.control_flits);
                                self.charge_msg(back, self.mesh.data_flits);
                                self.stats.invalidations += 1;
                                self.caches[owner].invalidate(line);
                                lat += self.mesh.latency(fwd)
                                    + self.cfg.lat.l1_hit
                                    + self.mesh.latency(back);
                            }
                        }
                        st.dir = Dir::Exclusive(core);
                        self.insert_line(core, line, Mesi::M, v);
                        lat
                    }
                }
            }
        };
        self.lines.insert(line, st);
        lat
    }

    /// Invalidate every sharer of `line` other than `keep`, per the
    /// caller's in-flight directory state; returns the added latency (max
    /// invalidation round trip through `home`).
    fn invalidate_others(&mut self, st: &LineState, line: u64, keep: usize, home: usize) -> u64 {
        let mut max_rtt = 0u64;
        if let Dir::Sharers(mask) = st.dir {
            for c in 0..self.cfg.cores {
                if c != keep && mask & (1 << c) != 0 {
                    self.stats.invalidations += 1;
                    let h = self.mesh.hops(home, c);
                    self.charge_msg(h, self.mesh.control_flits); // inv
                    self.charge_msg(h, self.mesh.control_flits); // ack
                    max_rtt = max_rtt.max(2 * self.mesh.latency(h));
                    self.caches[c].invalidate(line);
                }
            }
        }
        max_rtt
    }

    /// Selective-mode region hand-off: flush `lines` everywhere and assign
    /// a new class (e.g. a producer's private heap becoming the consumer's,
    /// or becoming read-only at a join). Returns the cycles charged.
    pub fn reclassify(&mut self, lines: &[u64], new_class: Class) -> u64 {
        let mut cost = 0u64;
        for &line in lines {
            let mut st = self.line_state(line);
            let old = self.resolve_class(&st);
            for c in 0..self.cfg.cores {
                if let Some(e) = self.caches[c].invalidate(line) {
                    if e.state == Mesi::M {
                        self.stats.writebacks += 1;
                        st.l3 = Some(e.version);
                        let hops = match old {
                            Class::Private(_) => 0,
                            _ => self.mesh.hops(c, self.mesh.home(line)),
                        };
                        self.charge_msg(hops, self.mesh.data_flits);
                        self.charge_l3();
                        cost += self.mesh.latency(hops) + self.cfg.lat.l3;
                    }
                }
            }
            st.dir = Dir::Uncached;
            st.class = Some(new_class);
            self.lines.insert(line, st);
        }
        cost
    }

    /// Verify the single-writer/multiple-reader invariant and directory
    /// consistency for Shared-class lines. Panics on violation.
    pub fn check_swmr(&self) {
        use std::collections::HashSet;
        let mut lines: HashSet<u64> = HashSet::new();
        for c in &self.caches {
            lines.extend(c.resident());
        }
        for line in lines {
            if self.class_of(line) != Class::Shared {
                continue;
            }
            let mut exclusive_holders = Vec::new();
            let mut shared_holders = Vec::new();
            for (ci, c) in self.caches.iter().enumerate() {
                if let Some(e) = c.peek(line) {
                    match e.state {
                        Mesi::M | Mesi::E => exclusive_holders.push(ci),
                        Mesi::S => shared_holders.push(ci),
                    }
                }
            }
            assert!(
                exclusive_holders.len() <= 1,
                "line {line:#x}: multiple exclusive holders {exclusive_holders:?}"
            );
            let dir = self.line_state(line).dir;
            if let Some(&x) = exclusive_holders.first() {
                assert!(
                    shared_holders.is_empty(),
                    "line {line:#x}: exclusive at {x} with sharers {shared_holders:?}"
                );
                assert_eq!(
                    dir,
                    Dir::Exclusive(x),
                    "line {line:#x}: directory out of sync with exclusive holder"
                );
            }
            if let Dir::Sharers(mask) = dir {
                for &s in &shared_holders {
                    assert!(
                        mask & (1 << s) != 0,
                        "line {line:#x}: sharer {s} missing from directory"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(mode: CohMode) -> System {
        System::new(SystemConfig::test(4, mode))
    }

    #[test]
    fn read_then_hit() {
        let mut s = sys(CohMode::Full);
        let cold = s.read(0, 100);
        let hit = s.read(0, 100);
        assert!(cold > hit);
        assert_eq!(hit, s.cfg.lat.l1_hit);
        s.check_swmr();
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut s = sys(CohMode::Full);
        s.read(0, 7);
        s.read(1, 7);
        s.read(2, 7);
        s.check_swmr();
        let _ = s.write(3, 7);
        assert!(s.stats.invalidations >= 2);
        s.check_swmr();
        // Reader 0 must re-miss and see the new version.
        let lat = s.read(0, 7);
        assert!(lat > s.cfg.lat.l1_hit);
        s.check_swmr();
    }

    #[test]
    fn modified_line_forwards_to_reader() {
        let mut s = sys(CohMode::Full);
        s.write(1, 42);
        let before = s.stats.forwards;
        s.read(2, 42);
        assert_eq!(s.stats.forwards, before + 1);
        s.check_swmr();
    }

    #[test]
    fn e_to_m_upgrade_is_silent() {
        let mut s = sys(CohMode::Full);
        s.read(0, 9); // E (no other sharers)
        let invs = s.stats.invalidations;
        let lat = s.write(0, 9);
        assert_eq!(lat, s.cfg.lat.l1_hit);
        assert_eq!(s.stats.invalidations, invs);
        s.check_swmr();
    }

    #[test]
    fn private_lines_bypass_directory_in_selective_mode() {
        let mut s = sys(CohMode::Selective);
        s.classify(0..32, Class::Private(2));
        for l in 0..32 {
            s.write(2, l);
            s.read(2, l);
        }
        assert_eq!(s.stats.dir_lookups, 0);
        assert_eq!(s.stats.deactivated, 32); // the 32 write misses (reads hit)
    }

    #[test]
    fn full_mode_ignores_classification() {
        let mut s = sys(CohMode::Full);
        s.classify(0..32, Class::Private(2));
        s.write(2, 0);
        assert!(s.stats.dir_lookups > 0);
        assert_eq!(s.stats.deactivated, 0);
    }

    #[test]
    #[should_panic(expected = "read-only region")]
    fn writing_readonly_region_panics() {
        let mut s = sys(CohMode::Selective);
        s.classify(10..11, Class::ReadOnly);
        s.write(0, 10);
    }

    #[test]
    fn readonly_reads_are_cheap_and_untracked() {
        let mut s = sys(CohMode::Selective);
        s.classify(100..110, Class::ReadOnly);
        for c in 0..4 {
            for l in 100..110 {
                s.read(c, l);
            }
        }
        assert_eq!(s.stats.dir_lookups, 0);
    }

    #[test]
    fn reclassify_hand_off_preserves_data() {
        let mut s = sys(CohMode::Selective);
        s.classify(50..58, Class::Private(0));
        for l in 50..58 {
            s.write(0, l);
        }
        // Hand the region to core 1.
        let cost = s.reclassify(&(50..58).collect::<Vec<_>>(), Class::Private(1));
        assert!(cost > 0, "flush of dirty lines must cost something");
        for l in 50..58 {
            // The debug assert inside read() verifies version freshness.
            s.read(1, l);
        }
    }

    #[test]
    fn selective_is_faster_and_cooler_for_private_data() {
        let run = |mode| {
            let mut s = sys(mode);
            s.classify(0..256, Class::Private(1));
            let mut cycles = 0;
            for rep in 0..4 {
                for l in 0..256 {
                    cycles += s.write(1, l);
                    cycles += s.read(1, l);
                }
                let _ = rep;
            }
            (cycles, s.energy.interconnect.get())
        };
        let (full_cyc, full_e) = run(CohMode::Full);
        let (sel_cyc, sel_e) = run(CohMode::Selective);
        assert!(sel_cyc < full_cyc, "{sel_cyc} vs {full_cyc}");
        assert!(sel_e < full_e, "{sel_e} vs {full_e}");
    }

    #[test]
    fn capacity_evictions_keep_directory_consistent() {
        let mut s = System::new(SystemConfig {
            cores: 4,
            l1_lines: 8,
            mode: CohMode::Full,
            protocol: ProtocolKind::Mesi,
            lat: LatencyModel::default(),
        });
        // Stream far beyond capacity with interleaved sharing.
        for l in 0..100u64 {
            s.write(0, l);
            s.read(1, l);
        }
        s.check_swmr();
        // Re-read everything; versions must be correct (debug asserts).
        for l in 0..100u64 {
            s.read(2, l);
        }
        s.check_swmr();
    }

    #[test]
    fn msi_pays_an_upgrade_where_mesi_upgrades_silently() {
        // Read-then-write private data: MESI's E state makes the write a
        // cache hit; MSI must go back to the directory.
        let run = |protocol| {
            let mut s = System::new(SystemConfig {
                cores: 4,
                l1_lines: 64,
                mode: CohMode::Full,
                protocol,
                lat: LatencyModel::default(),
            });
            let mut cycles = 0u64;
            for l in 0..32u64 {
                cycles += s.read(1, l);
                cycles += s.write(1, l);
            }
            (cycles, s.stats.dir_lookups)
        };
        let (mesi_cyc, mesi_dir) = run(ProtocolKind::Mesi);
        let (msi_cyc, msi_dir) = run(ProtocolKind::Msi);
        assert!(msi_cyc > mesi_cyc, "msi {msi_cyc} vs mesi {mesi_cyc}");
        assert!(msi_dir > mesi_dir);
    }

    #[test]
    fn msi_still_satisfies_swmr_and_freshness() {
        let mut s = System::new(SystemConfig {
            cores: 4,
            l1_lines: 16,
            mode: CohMode::Full,
            protocol: ProtocolKind::Msi,
            lat: LatencyModel::default(),
        });
        for i in 0..200u64 {
            let core = (i % 4) as usize;
            if i % 3 == 0 {
                s.write(core, i % 24);
            } else {
                s.read(core, i % 24);
            }
        }
        s.check_swmr();
    }

    #[test]
    fn selective_deactivation_subsumes_the_e_state_for_private_data() {
        // Under Selective, private data bypasses the protocol entirely, so
        // MSI-vs-MESI stops mattering for it.
        let run = |protocol| {
            let mut s = System::new(SystemConfig {
                cores: 2,
                l1_lines: 64,
                mode: CohMode::Selective,
                protocol,
                lat: LatencyModel::default(),
            });
            s.classify(0..32, Class::Private(0));
            let mut cycles = 0u64;
            for l in 0..32u64 {
                cycles += s.read(0, l);
                cycles += s.write(0, l);
            }
            cycles
        };
        assert_eq!(run(ProtocolKind::Mesi), run(ProtocolKind::Msi));
    }

    #[test]
    fn migratory_pattern_is_expensive_under_full_mesi() {
        // Producer writes, consumer reads, repeatedly: every round is a
        // forward + invalidate dance.
        let mut s = sys(CohMode::Full);
        for round in 0..10 {
            for l in 0..16 {
                s.write(0, l);
            }
            for l in 0..16 {
                s.read(1, l);
            }
            let _ = round;
        }
        assert!(s.stats.forwards >= 16, "forwards {}", s.stats.forwards);
        assert!(s.stats.invalidations > 0);
        s.check_swmr();
    }

    #[test]
    fn reserve_lines_changes_no_observable_behavior() {
        let run = |reserve: bool| {
            let mut s = sys(CohMode::Full);
            if reserve {
                s.reserve_lines(4096);
            }
            let mut cycles = 0u64;
            for i in 0..500u64 {
                let core = (i % 4) as usize;
                if i % 3 == 0 {
                    cycles += s.write(core, i % 96);
                } else {
                    cycles += s.read(core, i % 96);
                }
            }
            (cycles, s.stats.invalidations, s.stats.dram_fetches)
        };
        assert_eq!(run(false), run(true));
    }
}
