//! # interweave-heartbeat
//!
//! Heartbeat scheduling with interwoven event delivery (§IV-B of the paper;
//! TPAL, Rainey et al., PLDI 2021).
//!
//! Heartbeat scheduling promotes latent parallelism at a fixed period ♥
//! (typically 20–100 µs). The promotion signal must reach every worker CPU
//! at that rate, with low jitter, forever. Fig. 2 contrasts the two paths:
//!
//! - **Linux**: a kernel timer fires, a POSIX signal is queued, the target
//!   thread is interrupted, a user signal frame is built, the handler runs,
//!   `sigreturn` crosses back — per CPU, per beat. The machinery saturates
//!   below ~40 µs periods and jitters under load ("unsteady rates" in the
//!   figure).
//! - **Nautilus (Nemo)**: the CPU-0 LAPIC timer fires and the handler
//!   broadcasts an IPI; workers take a ~1500-cycle kernel-mode delivery.
//!   The hardware floor is microseconds below any requested ♥.
//!
//! The OS axis (`OsPoint`) now has a third point: the Aster-like
//! framekernel runs the broadcast topology with checked in-kernel
//! deliveries — it sustains the same fine beats as Nautilus, at slightly
//! higher per-beat cost and with rare maintenance noise.
//!
//! Modules:
//! - [`deque`]: the work-stealing deque TPAL workers schedule with.
//! - [`tpal`]: the promotion state machine (sequential/parallel variants,
//!   split-on-beat) — the scheduling half of heartbeat, tested at the
//!   logical level.
//! - [`sim`]: the Fig. 3 timing simulation: per-CPU beat delivery on each
//!   point of the OS axis, measuring achieved rate, stability, and
//!   scheduling overhead.
//! - [`scaling`]: the end-to-end payoff — speedup curves of heartbeat-
//!   promoted loops with bounded scheduling overhead.

#![warn(missing_docs)]

pub mod deque;
pub mod scaling;
pub mod sim;
pub mod tpal;

pub use sim::{run_heartbeat, HeartbeatConfig, HeartbeatResult};
