//! Heartbeat scheduling end-to-end: parallel speedup with bounded
//! promotion overhead.
//!
//! Heartbeat scheduling's theoretical pitch (Acar et al.) is that promotion
//! *only at beats* gives work-stealing's scalability while bounding
//! scheduling overhead by the beat frequency. This module runs the logical
//! TPAL scheduler ([`crate::tpal`]) under a wall-clock cost model — compute
//! cycles per iteration, promotion/steal costs from the kernel models, the
//! per-beat delivery cost of the chosen signaling path — and measures
//! speedup curves. It closes the loop between the Fig. 3 delivery
//! simulation (can the beats arrive?) and the scheduler (what do the beats
//! buy?).

use crate::tpal::Tpal;
use interweave_core::machine::MachineConfig;
use interweave_core::stack::OsPoint;
use interweave_core::time::Cycles;
use interweave_kernel::os::model_for;

/// One scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Machine.
    pub machine: MachineConfig,
    /// Kernel under test (prices the per-beat delivery cost).
    pub kind: OsPoint,
    /// Total loop iterations.
    pub total_iters: u64,
    /// Compute cycles per iteration.
    pub iter_cost: Cycles,
    /// Heartbeat period ♥ in µs.
    pub target_us: f64,
    /// Promotion grain (iterations).
    pub grain: u64,
}

impl ScalingConfig {
    /// A medium loop on the 2-socket server via the Nautilus path.
    pub fn default_nk() -> ScalingConfig {
        ScalingConfig {
            machine: MachineConfig::xeon_server_2s(),
            kind: OsPoint::NkLike,
            total_iters: 2_000_000,
            iter_cost: Cycles(40),
            target_us: 20.0,
            grain: 512,
        }
    }
}

/// Measured outcome at one worker count.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Workers used.
    pub workers: usize,
    /// Wall cycles to complete the loop.
    pub wall: Cycles,
    /// Speedup over the 1-worker run of the same configuration.
    pub speedup: f64,
    /// Promotions performed.
    pub promotions: u64,
    /// Steals performed.
    pub steals: u64,
    /// Fraction of cycles spent on heartbeat machinery + promotion.
    pub overhead_fraction: f64,
}

/// Run the scaling experiment at one worker count; returns wall cycles and
/// the scheduler's counters.
pub fn run_scaling(cfg: &ScalingConfig, workers: usize) -> ScalingPoint {
    assert!(workers >= 1);
    let freq = cfg.machine.freq;
    let beat_period = freq.cycles_per_us(cfg.target_us);
    // Iterations one worker completes between beats.
    let chunk = (beat_period.get() / cfg.iter_cost.get()).max(1);

    // Per-beat delivery cost on a worker (the Fig. 3 receiver path).
    let deliver: Cycles = model_for(cfg.kind, cfg.machine.clone()).event_deliver();
    let promote_cost = Cycles(250); // split + deque push
    let steal_cost = Cycles(400); // cross-CPU deque steal

    let mut t = Tpal::new(workers, cfg.grain);
    let mut done = vec![false; cfg.total_iters as usize];
    t.submit(crate::tpal::LoopTask {
        lo: 0,
        hi: cfg.total_iters,
    });

    // Round-based co-simulation: one round = one beat period of wall time.
    // Every worker receives the beat (cost), may promote (cost), acquires
    // work, and executes up to `chunk` iterations.
    let mut wall = Cycles::ZERO;
    let mut overhead = Cycles::ZERO;
    let mut executed = 0u64;
    while executed < cfg.total_iters {
        wall += beat_period;
        for w in 0..workers {
            overhead += deliver;
            if t.beat(w) {
                overhead += promote_cost;
            }
            let had_current = t.workers[w].current.as_ref().is_some_and(|c| !c.is_empty());
            if t.acquire(w) {
                if !had_current && t.steals > 0 {
                    // Count a steal's cost when acquisition crossed CPUs;
                    // (acquire() already counted the event).
                    overhead += steal_cost;
                }
                executed += t.execute(w, chunk, &mut done);
            }
        }
    }

    assert!(done.iter().all(|&d| d), "scheduler lost iterations");
    let total_cpu = wall.get() * workers as u64;
    ScalingPoint {
        workers,
        wall,
        speedup: 0.0, // filled by the sweep
        promotions: t.promotions,
        steals: t.steals,
        overhead_fraction: overhead.get() as f64 / total_cpu as f64,
    }
}

/// Sweep worker counts and compute speedups against the 1-worker run.
pub fn scaling_sweep(cfg: &ScalingConfig, worker_counts: &[usize]) -> Vec<ScalingPoint> {
    let base = run_scaling(cfg, 1).wall;
    worker_counts
        .iter()
        .map(|&w| {
            let mut p = run_scaling(cfg, w);
            p.speedup = base.as_f64() / p.wall.as_f64();
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_linear_speedup_at_moderate_scale() {
        let cfg = ScalingConfig::default_nk();
        let pts = scaling_sweep(&cfg, &[1, 2, 4, 8]);
        let at = |w: usize| pts.iter().find(|p| p.workers == w).unwrap();
        assert!(at(2).speedup > 1.7, "2w speedup {}", at(2).speedup);
        assert!(at(4).speedup > 3.2, "4w speedup {}", at(4).speedup);
        assert!(at(8).speedup > 5.8, "8w speedup {}", at(8).speedup);
    }

    #[test]
    fn promotion_overhead_stays_bounded() {
        // The heartbeat guarantee: scheduling costs are bounded by the beat
        // frequency, independent of problem size.
        let cfg = ScalingConfig::default_nk();
        for w in [1usize, 4, 16] {
            let p = run_scaling(&cfg, w);
            assert!(
                p.overhead_fraction < 0.06,
                "{w} workers: overhead {:.3}",
                p.overhead_fraction
            );
        }
    }

    #[test]
    fn work_spreads_through_promotions() {
        let cfg = ScalingConfig::default_nk();
        let p = run_scaling(&cfg, 8);
        assert!(p.promotions > 0);
        assert!(p.steals > 0);
    }

    #[test]
    fn linux_signaling_costs_more_than_nk_at_fine_beats() {
        let nk = ScalingConfig::default_nk();
        let lx = ScalingConfig {
            kind: OsPoint::LinuxLike,
            ..nk.clone()
        };
        let pn = run_scaling(&nk, 8);
        let pl = run_scaling(&lx, 8);
        assert!(
            pl.overhead_fraction > 2.0 * pn.overhead_fraction,
            "linux {:.3} vs nk {:.3}",
            pl.overhead_fraction,
            pn.overhead_fraction
        );
    }

    #[test]
    fn framekernel_delivery_overhead_sits_between() {
        let nk = ScalingConfig::default_nk();
        let fk = ScalingConfig {
            kind: OsPoint::AsterLike,
            ..nk.clone()
        };
        let lx = ScalingConfig {
            kind: OsPoint::LinuxLike,
            ..nk.clone()
        };
        let pn = run_scaling(&nk, 8);
        let pf = run_scaling(&fk, 8);
        let pl = run_scaling(&lx, 8);
        assert!(
            pn.overhead_fraction < pf.overhead_fraction
                && pf.overhead_fraction < pl.overhead_fraction,
            "nk {:.4} aster {:.4} linux {:.4}",
            pn.overhead_fraction,
            pf.overhead_fraction,
            pl.overhead_fraction
        );
    }

    #[test]
    fn tiny_loops_do_not_over_promote() {
        // A loop smaller than one beat's worth of work completes with zero
        // or near-zero promotions — sequential by default.
        let cfg = ScalingConfig {
            total_iters: 500,
            ..ScalingConfig::default_nk()
        };
        let p = run_scaling(&cfg, 8);
        assert!(p.promotions <= 1, "promotions {}", p.promotions);
    }
}
