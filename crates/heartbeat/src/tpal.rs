//! The heartbeat-promotion state machine (logical level).
//!
//! Heartbeat scheduling's contract (Acar et al., PLDI 2018): the program
//! always runs the *sequential* variant; on each heartbeat — and only then
//! — a worker may *promote* latent parallelism by splitting its remaining
//! work and publishing half to its deque, where idle workers steal it.
//! Promotion off the critical path bounds scheduling overhead by the beat
//! frequency, which is exactly why the delivery mechanism's rate and
//! stability (Fig. 3) matter.
//!
//! This module tests that contract at the logical level (who executes what,
//! when promotion happens); the timing behaviour lives in [`crate::sim`].

use crate::deque::WorkDeque;

/// A parallel-loop task: the iteration range `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopTask {
    /// First iteration.
    pub lo: u64,
    /// One past the last iteration.
    pub hi: u64,
}

impl LoopTask {
    /// Remaining iterations.
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// True when exhausted.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// One TPAL worker: a deque plus the task it is sequentially executing.
#[derive(Debug, Clone, Default)]
pub struct Worker {
    /// This worker's deque.
    pub deque: WorkDeque<LoopTask>,
    /// The task currently running its sequential variant.
    pub current: Option<LoopTask>,
    /// Iterations this worker has executed.
    pub executed: u64,
}

/// The logical TPAL scheduler.
#[derive(Debug, Clone)]
pub struct Tpal {
    /// Workers, one per CPU.
    pub workers: Vec<Worker>,
    /// Minimum remaining size worth splitting (the grain).
    pub grain: u64,
    /// Promotions performed (splits).
    pub promotions: u64,
    /// Successful steals.
    pub steals: u64,
}

impl Tpal {
    /// A scheduler with `n` workers and the given promotion grain.
    pub fn new(n: usize, grain: u64) -> Tpal {
        assert!(n > 0 && grain >= 2);
        Tpal {
            workers: (0..n).map(|_| Worker::default()).collect(),
            grain,
            promotions: 0,
            steals: 0,
        }
    }

    /// Submit the root loop to worker 0 (the program enters sequentially).
    pub fn submit(&mut self, t: LoopTask) {
        self.workers[0].deque.push(t);
    }

    /// Deliver a heartbeat to worker `w`: promote if its current task still
    /// has at least `grain` iterations. Returns true if a promotion
    /// happened. This is the *only* place parallelism is created.
    pub fn beat(&mut self, w: usize) -> bool {
        let worker = &mut self.workers[w];
        if let Some(cur) = worker.current.as_mut() {
            if cur.len() >= self.grain {
                let mid = cur.lo + cur.len() / 2;
                let split = LoopTask {
                    lo: mid,
                    hi: cur.hi,
                };
                cur.hi = mid;
                worker.deque.push(split);
                self.promotions += 1;
                return true;
            }
        }
        false
    }

    /// Ensure worker `w` has a current task: pop its own deque, else steal
    /// round-robin. Returns false if no work exists anywhere for it.
    pub fn acquire(&mut self, w: usize) -> bool {
        if self.workers[w]
            .current
            .as_ref()
            .is_some_and(|c| !c.is_empty())
        {
            return true;
        }
        if let Some(t) = self.workers[w].deque.pop() {
            self.workers[w].current = Some(t);
            return true;
        }
        let n = self.workers.len();
        for k in 1..n {
            let victim = (w + k) % n;
            if let Some(t) = self.workers[victim].deque.steal() {
                self.workers[w].current = Some(t);
                self.steals += 1;
                return true;
            }
        }
        self.workers[w].current = None;
        false
    }

    /// Execute up to `budget` iterations of worker `w`'s current task,
    /// marking them in `done`. Returns iterations executed.
    pub fn execute(&mut self, w: usize, budget: u64, done: &mut [bool]) -> u64 {
        let Some(cur) = self.workers[w].current.as_mut() else {
            return 0;
        };
        let n = budget.min(cur.len());
        for i in cur.lo..cur.lo + n {
            assert!(!done[i as usize], "iteration {i} executed twice");
            done[i as usize] = true;
        }
        cur.lo += n;
        if cur.is_empty() {
            self.workers[w].current = None;
        }
        self.workers[w].executed += n;
        n
    }

    /// Run a whole loop of `total` iterations to completion in rounds:
    /// each round every worker acquires + executes `chunk` iterations, and
    /// every `beat_every` rounds every worker receives a heartbeat.
    /// `beat_every == 0` means "no heartbeats ever".
    pub fn run_loop(&mut self, total: u64, chunk: u64, beat_every: u64) -> Vec<bool> {
        let mut done = vec![false; total as usize];
        self.submit(LoopTask { lo: 0, hi: total });
        let n = self.workers.len();
        let mut round = 0u64;
        loop {
            // Heartbeat first (promotion points precede the work in a
            // round), then execute.
            round += 1;
            if beat_every > 0 && round.is_multiple_of(beat_every) {
                for w in 0..n {
                    self.beat(w);
                }
            }
            let mut any = false;
            for w in 0..n {
                if self.acquire(w) {
                    any |= self.execute(w, chunk, &mut done) > 0;
                }
            }
            if !any {
                break;
            }
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_iteration_executes_exactly_once() {
        let mut t = Tpal::new(4, 8);
        let done = t.run_loop(1000, 16, 2);
        assert!(done.iter().all(|&d| d), "missed iterations");
        // Double execution would have panicked in execute().
        let total: u64 = t.workers.iter().map(|w| w.executed).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn without_heartbeats_execution_stays_sequential() {
        let mut t = Tpal::new(8, 8);
        let done = t.run_loop(500, 16, 0);
        assert!(done.iter().all(|&d| d));
        assert_eq!(t.promotions, 0);
        assert_eq!(t.steals, 0);
        assert_eq!(t.workers[0].executed, 500);
        for w in &t.workers[1..] {
            assert_eq!(w.executed, 0);
        }
    }

    #[test]
    fn heartbeats_spread_work_across_workers() {
        let mut t = Tpal::new(4, 4);
        let done = t.run_loop(4096, 8, 1);
        assert!(done.iter().all(|&d| d));
        assert!(t.promotions > 0);
        assert!(t.steals > 0);
        for (i, w) in t.workers.iter().enumerate() {
            assert!(w.executed > 0, "worker {i} never ran");
        }
    }

    #[test]
    fn promotion_respects_grain() {
        let mut t = Tpal::new(1, 100);
        t.submit(LoopTask { lo: 0, hi: 50 });
        assert!(t.acquire(0));
        // Remaining (50) < grain (100): the beat must not split.
        assert!(!t.beat(0));
        assert_eq!(t.promotions, 0);
    }

    #[test]
    fn promotions_bounded_by_beats() {
        // One promotion per beat per worker, at most.
        let mut t = Tpal::new(2, 2);
        t.submit(LoopTask { lo: 0, hi: 1 << 14 });
        let mut done = vec![false; 1 << 14];
        let mut beats = 0u64;
        for _ in 0..200 {
            for w in 0..2 {
                t.beat(w);
                beats += 1;
                t.acquire(w);
                t.execute(w, 32, &mut done);
            }
        }
        assert!(t.promotions <= beats);
    }

    #[test]
    fn deques_conserve_tasks() {
        let mut t = Tpal::new(3, 4);
        let _ = t.run_loop(999, 7, 3);
        for w in &t.workers {
            assert!(w.deque.conserved());
        }
    }
}
