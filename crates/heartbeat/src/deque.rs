//! The work-stealing deque TPAL workers schedule with.
//!
//! Owner pushes and pops at the bottom (LIFO, cache-friendly); thieves
//! steal from the top (FIFO, oldest = biggest work first) — the Chase–Lev
//! discipline. The simulation is deterministic and single-threaded, so this
//! is the *algorithmic* deque (ownership rules enforced by the API shape),
//! not an atomics exercise; the cross-thread version would add the usual
//! acquire/release fences around `top`.

use std::collections::VecDeque;

/// A work-stealing deque of tasks `T`.
#[derive(Debug, Clone)]
pub struct WorkDeque<T> {
    q: VecDeque<T>,
    /// Lifetime counters for the invariant tests.
    pub pushed: u64,
    /// Tasks taken by the owner.
    pub popped: u64,
    /// Tasks taken by thieves.
    pub stolen: u64,
}

impl<T> Default for WorkDeque<T> {
    fn default() -> Self {
        WorkDeque {
            q: VecDeque::new(),
            pushed: 0,
            popped: 0,
            stolen: 0,
        }
    }
}

impl<T> WorkDeque<T> {
    /// An empty deque.
    pub fn new() -> WorkDeque<T> {
        WorkDeque::default()
    }

    /// Owner: push a task at the bottom.
    pub fn push(&mut self, t: T) {
        self.pushed += 1;
        self.q.push_back(t);
    }

    /// Owner: pop the most recently pushed task.
    pub fn pop(&mut self) -> Option<T> {
        let t = self.q.pop_back();
        if t.is_some() {
            self.popped += 1;
        }
        t
    }

    /// Thief: steal the oldest task.
    pub fn steal(&mut self) -> Option<T> {
        let t = self.q.pop_front();
        if t.is_some() {
            self.stolen += 1;
        }
        t
    }

    /// Queued task count.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Conservation invariant: everything pushed is either still queued or
    /// was taken exactly once.
    pub fn conserved(&self) -> bool {
        self.pushed == self.popped + self.stolen + self.q.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let mut d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1)); // oldest
        assert_eq!(d.pop(), Some(3)); // newest
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert!(d.conserved());
    }

    #[test]
    fn conservation_under_interleaving() {
        let mut d = WorkDeque::new();
        let mut taken = Vec::new();
        for i in 0..100 {
            d.push(i);
            if i % 3 == 0 {
                if let Some(t) = d.steal() {
                    taken.push(t);
                }
            }
            if i % 7 == 0 {
                if let Some(t) = d.pop() {
                    taken.push(t);
                }
            }
        }
        while let Some(t) = d.pop() {
            taken.push(t);
        }
        taken.sort_unstable();
        assert_eq!(taken, (0..100).collect::<Vec<_>>());
        assert!(d.conserved());
    }

    #[test]
    fn steal_from_empty_is_none() {
        let mut d: WorkDeque<u32> = WorkDeque::new();
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
        assert!(d.conserved());
    }
}
