//! The Fig. 3 timing simulation: achieved vs. target heartbeat rate.
//!
//! For a target period ♥ and CPU count, simulate beat delivery over a run:
//!
//! - **Linux path** (Fig. 2, right): per-CPU POSIX timers. The effective
//!   period floors at the kernel's signal machinery limit, each delivery
//!   pays the signal round trip plus a timer re-arm syscall, hrtimer slack
//!   jitters every fire, coalescing drops beats that land on a still-busy
//!   handler, and background noise delays deliveries.
//! - **Broadcast path** (Fig. 2, left): the CPU-0 LAPIC timer fires on its
//!   programmed cycle; CPU 0 broadcasts IPIs; workers pay a short
//!   deterministic kernel-mode delivery. Nautilus has no jitter sources at
//!   all (§III: deterministic interrupt path lengths); the Aster-like
//!   framekernel runs the same topology with slightly dearer checked
//!   deliveries and rare maintenance noise.
//!
//! Reported per run: achieved rate (fraction of target), inter-beat
//! stability (coefficient of variation), and scheduling overhead (delivery
//! + promotion-handler cycles as a fraction of CPU time).

use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stack::OsPoint;
use interweave_core::stats::Summary;
use interweave_core::time::Cycles;
use interweave_kernel::os::{model_for, LinuxModel, OsModel};

/// One heartbeat experiment.
#[derive(Debug, Clone)]
pub struct HeartbeatConfig {
    /// The machine (16 CPUs at 3.3 GHz in the paper's Fig. 3 setup).
    pub machine: MachineConfig,
    /// Kernel under test; the signal topology follows it (Linux-like ↦
    /// per-CPU POSIX timers, NK/Aster-like ↦ CPU-0 broadcast).
    pub kind: OsPoint,
    /// Worker CPUs receiving beats.
    pub cpus: usize,
    /// Target heartbeat period ♥ in µs (paper: 20 and 100).
    pub target_us: f64,
    /// Simulated duration in µs.
    pub duration_us: f64,
    /// Promotion-handler work per beat, cycles (varies by benchmark: how
    /// much latent parallelism bookkeeping a beat performs).
    pub handler_work: Cycles,
    /// RNG seed (jitter and noise are deterministic given the seed).
    pub seed: u64,
}

impl HeartbeatConfig {
    /// The paper's Fig. 3 setup on a given kernel: 16 CPUs, 50 ms run.
    pub fn fig3(kind: OsPoint, target_us: f64, handler_work: Cycles) -> HeartbeatConfig {
        HeartbeatConfig {
            machine: MachineConfig::xeon_server_2s().with_cores(16),
            kind,
            cpus: 16,
            target_us,
            duration_us: 50_000.0,
            handler_work,
            seed: 0x48_42,
        }
    }
}

/// Measured outcome of one heartbeat run.
#[derive(Debug, Clone)]
pub struct HeartbeatResult {
    /// Target rate in beats/ms/CPU.
    pub target_rate: f64,
    /// Achieved mean rate in beats/ms/CPU.
    pub achieved_rate: f64,
    /// Mean coefficient of variation of inter-beat intervals (stability; 0
    /// = perfectly steady).
    pub interbeat_cv: f64,
    /// Scheduling overhead: (delivery + handler) cycles / total CPU cycles,
    /// in percent.
    pub overhead_pct: f64,
    /// Beats delivered across all CPUs.
    pub delivered: u64,
    /// Beats lost to coalescing (Linux path only).
    pub coalesced: u64,
}

impl HeartbeatResult {
    /// Achieved rate as a fraction of target (Fig. 3's y-axis).
    pub fn fraction_of_target(&self) -> f64 {
        self.achieved_rate / self.target_rate
    }

    /// Publish delivery counters into `sink`'s registry as gauges
    /// (idempotent: re-publishing overwrites with current values).
    pub fn publish_telemetry(&self, sink: &interweave_core::telemetry::Sink) {
        use interweave_core::telemetry::{Key, Layer, Unit};
        const KEY_DELIVERED: Key = Key::new("heartbeat.delivered", Layer::Runtime, Unit::Count);
        const KEY_COALESCED: Key = Key::new("heartbeat.coalesced", Layer::Runtime, Unit::Count);
        sink.gauge(&KEY_DELIVERED, 0, self.delivered);
        sink.gauge(&KEY_COALESCED, 0, self.coalesced);
    }
}

/// Run one heartbeat experiment.
///
/// ```
/// use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
/// use interweave_core::stack::OsPoint;
/// use interweave_core::Cycles;
///
/// let nk = run_heartbeat(&HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1000)));
/// assert!(nk.fraction_of_target() > 0.99); // Nautilus sustains ♥ = 20 µs
/// let fk = run_heartbeat(&HeartbeatConfig::fig3(OsPoint::AsterLike, 20.0, Cycles(1000)));
/// assert!(fk.fraction_of_target() > 0.99); // so does the framekernel
/// let lx = run_heartbeat(&HeartbeatConfig::fig3(OsPoint::LinuxLike, 20.0, Cycles(1000)));
/// assert!(lx.fraction_of_target() < 0.6); // Linux cannot
/// ```
pub fn run_heartbeat(cfg: &HeartbeatConfig) -> HeartbeatResult {
    match cfg.kind {
        OsPoint::LinuxLike => run_linux(cfg),
        os => run_broadcast(cfg, model_for(os, cfg.machine.clone()).as_ref()),
    }
}

fn summarize(
    cfg: &HeartbeatConfig,
    beat_times: &[Vec<Cycles>],
    overhead_cycles: u64,
    coalesced: u64,
) -> HeartbeatResult {
    let freq = cfg.machine.freq;
    let dur = freq.cycles_per_us(cfg.duration_us);
    let mut delivered = 0u64;
    let mut cv = Summary::new();
    for times in beat_times {
        delivered += times.len() as u64;
        if times.len() >= 3 {
            let mut intervals = Summary::new();
            for w in times.windows(2) {
                intervals.add((w[1] - w[0]).as_f64());
            }
            cv.add(intervals.cv());
        }
    }
    let per_ms = 1000.0 / cfg.target_us;
    let achieved = delivered as f64 / cfg.cpus as f64 / (cfg.duration_us / 1000.0);
    HeartbeatResult {
        target_rate: per_ms,
        achieved_rate: achieved,
        interbeat_cv: cv.mean(),
        overhead_pct: 100.0 * overhead_cycles as f64 / (dur.get() * cfg.cpus as u64) as f64,
        delivered,
        coalesced,
    }
}

fn run_linux(cfg: &HeartbeatConfig) -> HeartbeatResult {
    let lx = LinuxModel::new(cfg.machine.clone());
    let freq = cfg.machine.freq;
    let dur = freq.cycles_per_us(cfg.duration_us);
    let target = freq.cycles_per_us(cfg.target_us);
    // The kernel's signal machinery cannot cycle faster than its floor.
    let period = target.max(lx.timer_min_period());

    let mut rng = SplitMix64::new(cfg.seed);
    let mut beat_times: Vec<Vec<Cycles>> = vec![Vec::new(); cfg.cpus];
    let mut overhead = 0u64;
    let mut coalesced = 0u64;

    // Per-beat receiver cost: signal round trip + the promotion handler +
    // re-arming the interval timer (a syscall). Handler work costs ~2x in
    // signal context: the crossing evicted the worker's cache and TLB state
    // (measured as multi-microsecond effective signal costs in [36]).
    let deliver_cost = lx.event_deliver() + cfg.handler_work * 2 + lx.event_send();

    for times in beat_times.iter_mut() {
        let mut fire = period; // first fire one period in
        let mut busy_until = Cycles::ZERO;
        while fire < dur {
            let mut deliver_at = fire + lx.timer_jitter(&mut rng);
            // Background noise occasionally lands on the delivery path.
            if let Some(n) = lx.sample_noise(&mut rng) {
                if n.after < period {
                    deliver_at += n.duration;
                    overhead += n.duration.get();
                }
            }
            if deliver_at < busy_until {
                // The previous handler still runs: the signal coalesces
                // (SIGALRM does not queue) — a lost beat.
                coalesced += 1;
            } else {
                times.push(deliver_at);
                busy_until = deliver_at + deliver_cost;
                overhead += deliver_cost.get();
            }
            fire += period;
        }
    }
    summarize(cfg, &beat_times, overhead, coalesced)
}

/// The kernel-owned broadcast topology (Fig. 2, left), generic over the
/// in-kernel personality: NK runs it with raw sends, zero jitter, and no
/// noise (bit-identical to the paper's Nautilus path); the Aster-like
/// framekernel runs it with checked sends/deliveries and rare maintenance
/// noise that occasionally delays a worker's beat.
fn run_broadcast(cfg: &HeartbeatConfig, os: &dyn OsModel) -> HeartbeatResult {
    let freq = cfg.machine.freq;
    let dur = freq.cycles_per_us(cfg.duration_us);
    let target = freq.cycles_per_us(cfg.target_us);
    let period = target.max(os.timer_min_period());

    let c = &cfg.machine.cost;
    let mut rng = SplitMix64::new(cfg.seed);
    let mut beat_times: Vec<Vec<Cycles>> = vec![Vec::new(); cfg.cpus];
    let mut overhead = 0u64;

    // CPU 0: timer dispatch + re-arm + broadcast + its own handler work.
    let cpu0_cost = cfg.machine.dispatch_cost()
        + c.timer_program
        + os.event_send() * (cfg.cpus as u64 - 1)
        + cfg.handler_work
        + c.intr_return;
    // Workers: IPI delivery + handler work.
    let worker_cost = os.event_deliver() + cfg.handler_work;

    let mut fire = period;
    while fire < dur {
        beat_times[0].push(fire);
        overhead += cpu0_cost.get();
        for times in beat_times.iter_mut().skip(1) {
            let mut deliver_at = fire + c.ipi_latency;
            // Background kernel work occasionally lands on the delivery
            // path (never for NK, whose `sample_noise` is `None`).
            if let Some(n) = os.sample_noise(&mut rng) {
                if n.after < period {
                    deliver_at += n.duration;
                    overhead += n.duration.get();
                }
            }
            times.push(deliver_at);
            overhead += worker_cost.get();
        }
        fire += period;
    }
    summarize(cfg, &beat_times, overhead, 0)
}

/// The Fig. 3 benchmark set: TPAL-style workloads differing in how much
/// promotion bookkeeping one beat performs.
pub fn fig3_benchmarks() -> Vec<(&'static str, Cycles)> {
    vec![
        ("plus-reduce-array", Cycles(400)),
        ("spmv", Cycles(700)),
        ("floyd-warshall", Cycles(1000)),
        ("srad", Cycles(1300)),
        ("knapsack", Cycles(1600)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: OsPoint, target_us: f64, handler: u64) -> HeartbeatResult {
        run_heartbeat(&HeartbeatConfig::fig3(kind, target_us, Cycles(handler)))
    }

    #[test]
    fn nautilus_hits_target_at_100us_and_20us() {
        // Fig. 3: "Nautilus not only hits the target, but it also delivers
        // a consistent, stable rate at both 100 µs and 20 µs."
        for h in [100.0, 20.0] {
            let r = run(OsPoint::NkLike, h, 1500);
            assert!(
                r.fraction_of_target() > 0.99,
                "♥={h}: fraction {}",
                r.fraction_of_target()
            );
            assert!(r.interbeat_cv < 0.01, "♥={h}: cv {}", r.interbeat_cv);
        }
    }

    #[test]
    fn linux_undershoots_at_20us() {
        let r = run(OsPoint::LinuxLike, 20.0, 1500);
        assert!(
            r.fraction_of_target() < 0.6,
            "fraction {}",
            r.fraction_of_target()
        );
    }

    #[test]
    fn linux_is_unsteady_compared_to_nautilus() {
        let lx = run(OsPoint::LinuxLike, 100.0, 1500);
        let nk = run(OsPoint::NkLike, 100.0, 1500);
        assert!(
            lx.interbeat_cv > 10.0 * nk.interbeat_cv.max(1e-9),
            "linux cv {} vs nk cv {}",
            lx.interbeat_cv,
            nk.interbeat_cv
        );
        assert!(lx.interbeat_cv > 0.02);
    }

    #[test]
    fn overhead_band_matches_the_paper() {
        // §IV-B: "scheduling overheads are 13–22% on Linux, and reduce to at
        // most 4.9% in Nautilus". Our model lands in the same order: Linux
        // several-fold worse, Nautilus under the 4.9% bound at ♥=20 µs.
        for (name, hw) in fig3_benchmarks() {
            let nk = run(OsPoint::NkLike, 20.0, hw.get());
            let lx = run(OsPoint::LinuxLike, 20.0, hw.get());
            assert!(
                nk.overhead_pct <= 4.9,
                "{name}: nk overhead {:.2}%",
                nk.overhead_pct
            );
            assert!(
                lx.overhead_pct > 1.8 * nk.overhead_pct,
                "{name}: lx {:.2}% vs nk {:.2}%",
                lx.overhead_pct,
                nk.overhead_pct
            );
        }
    }

    #[test]
    fn linux_coalesces_beats_under_pressure() {
        // With a heavy handler at a saturated period, some signals land on
        // a busy handler and are lost.
        let r = run(OsPoint::LinuxLike, 20.0, 12_000);
        assert!(r.coalesced > 0, "expected coalescing, got {r:?}");
    }

    #[test]
    fn linux_approaches_target_at_long_periods() {
        // At ♥ = 1 ms the commodity path keeps up (it is fine for coarse
        // beats — the paper's point is the *fine-grain* regime).
        let r = run(OsPoint::LinuxLike, 1000.0, 1500);
        assert!(
            r.fraction_of_target() > 0.95,
            "fraction {}",
            r.fraction_of_target()
        );
    }

    #[test]
    fn pipeline_interrupts_cut_nk_overhead_further() {
        // §V-D ablation: delivering beats as pipeline interrupts removes
        // the dispatch cost from every worker delivery.
        let mut cfg = HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1500));
        let base = run_heartbeat(&cfg);
        cfg.machine = cfg.machine.with_pipeline_interrupts();
        let pipe = run_heartbeat(&cfg);
        assert!(
            pipe.overhead_pct < base.overhead_pct * 0.75,
            "pipe {:.2}% vs idt {:.2}%",
            pipe.overhead_pct,
            base.overhead_pct
        );
    }

    #[test]
    fn framekernel_hits_target_with_small_but_nonzero_jitter() {
        // The Aster-like broadcast sustains ♥ = 20 µs like NK (its timer
        // floor is far below the period), but rare maintenance noise gives
        // it a nonzero CV — strictly between NK's zero and Linux's spread.
        let fk = run(OsPoint::AsterLike, 20.0, 1500);
        assert!(
            fk.fraction_of_target() > 0.99,
            "fraction {}",
            fk.fraction_of_target()
        );
        let nk = run(OsPoint::NkLike, 100.0, 1500);
        let lx = run(OsPoint::LinuxLike, 100.0, 1500);
        let fk100 = run(OsPoint::AsterLike, 100.0, 1500);
        assert!(
            nk.interbeat_cv < fk100.interbeat_cv && fk100.interbeat_cv < lx.interbeat_cv,
            "cv ordering: nk {} aster {} linux {}",
            nk.interbeat_cv,
            fk100.interbeat_cv,
            lx.interbeat_cv
        );
    }

    #[test]
    fn framekernel_overhead_sits_between_the_endpoints() {
        for (name, hw) in fig3_benchmarks() {
            let nk = run(OsPoint::NkLike, 20.0, hw.get());
            let fk = run(OsPoint::AsterLike, 20.0, hw.get());
            let lx = run(OsPoint::LinuxLike, 20.0, hw.get());
            assert!(
                nk.overhead_pct < fk.overhead_pct && fk.overhead_pct < lx.overhead_pct,
                "{name}: nk {:.2}% aster {:.2}% lx {:.2}%",
                nk.overhead_pct,
                fk.overhead_pct,
                lx.overhead_pct
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(OsPoint::LinuxLike, 20.0, 1500);
        let b = run(OsPoint::LinuxLike, 20.0, 1500);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.coalesced, b.coalesced);
        assert!((a.interbeat_cv - b.interbeat_cv).abs() < 1e-12);
    }
}
