//! Property tests for the heartbeat scheduler: deque conservation and the
//! exactly-once execution guarantee of promotion-based loop splitting.

use interweave_heartbeat::deque::WorkDeque;
use interweave_heartbeat::tpal::Tpal;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum DqOp {
    Push(u32),
    Pop,
    Steal,
}

fn dq_ops() -> impl Strategy<Value = Vec<DqOp>> {
    prop::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(DqOp::Push),
            Just(DqOp::Pop),
            Just(DqOp::Steal),
        ],
        1..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every pushed task is taken exactly once (or still queued), under any
    /// owner/thief interleaving.
    #[test]
    fn deque_conserves_tasks(ops in dq_ops()) {
        let mut d = WorkDeque::new();
        let mut pushed = Vec::new();
        let mut taken = Vec::new();
        for op in ops {
            match op {
                DqOp::Push(v) => {
                    d.push(v);
                    pushed.push(v);
                }
                DqOp::Pop => {
                    if let Some(v) = d.pop() {
                        taken.push(v);
                    }
                }
                DqOp::Steal => {
                    if let Some(v) = d.steal() {
                        taken.push(v);
                    }
                }
            }
            prop_assert!(d.conserved());
        }
        while let Some(v) = d.pop() {
            taken.push(v);
        }
        pushed.sort_unstable();
        taken.sort_unstable();
        prop_assert_eq!(pushed, taken);
    }

    /// Heartbeat-promoted loops execute every iteration exactly once, for
    /// any worker count, grain, chunk size, and beat cadence.
    #[test]
    fn tpal_exactly_once(
        workers in 1usize..8,
        grain in 2u64..64,
        total in 1u64..4000,
        chunk in 1u64..64,
        beat_every in 0u64..8,
    ) {
        let mut t = Tpal::new(workers, grain);
        let done = t.run_loop(total, chunk, beat_every);
        prop_assert!(done.iter().all(|&d| d), "missed iterations");
        let executed: u64 = t.workers.iter().map(|w| w.executed).sum();
        prop_assert_eq!(executed, total);
        for w in &t.workers {
            prop_assert!(w.deque.conserved());
        }
    }

    /// Without beats, execution is sequential regardless of worker count —
    /// the heartbeat contract that promotion is the *only* parallelism
    /// source.
    #[test]
    fn no_beats_no_parallelism(workers in 1usize..8, total in 1u64..2000, chunk in 1u64..64) {
        let mut t = Tpal::new(workers, 4);
        let done = t.run_loop(total, chunk, 0);
        prop_assert!(done.iter().all(|&d| d));
        prop_assert_eq!(t.promotions, 0);
        prop_assert_eq!(t.workers[0].executed, total);
    }
}

// ---------------------------------------------------------------------------
// Timing-simulation properties.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Nautilus path never overshoots its target rate and never loses
    /// beats, for any feasible period and handler size.
    #[test]
    fn nk_path_is_exact_for_any_feasible_period(
        target_us in 10.0f64..500.0,
        handler in 200u64..2_000,
    ) {
        use interweave_core::stack::OsPoint;
        use interweave_core::Cycles;
        use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
        let mut cfg = HeartbeatConfig::fig3(OsPoint::NkLike, target_us, Cycles(handler));
        // Window scaled to the period so end-of-window quantization stays
        // below a percent (the property is about the mechanism, not about
        // fencepost effects at tiny windows).
        cfg.duration_us = target_us * 200.0;
        let r = run_heartbeat(&cfg);
        prop_assert!(r.fraction_of_target() <= 1.02, "overshoot {}", r.fraction_of_target());
        prop_assert!(r.fraction_of_target() >= 0.98, "undershoot {}", r.fraction_of_target());
        prop_assert!(r.interbeat_cv < 1e-6);
        prop_assert_eq!(r.coalesced, 0);
    }

    /// The Linux path never *beats* the Nautilus path on any metric, under
    /// any sampled configuration.
    #[test]
    fn linux_never_dominates_nk(
        target_us in 10.0f64..200.0,
        handler in 200u64..2_000,
    ) {
        use interweave_core::stack::OsPoint;
        use interweave_core::Cycles;
        use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
        let mut lx_cfg = HeartbeatConfig::fig3(OsPoint::LinuxLike, target_us, Cycles(handler));
        lx_cfg.duration_us = target_us * 200.0;
        let mut nk_cfg = HeartbeatConfig::fig3(OsPoint::NkLike, target_us, Cycles(handler));
        nk_cfg.duration_us = target_us * 200.0;
        let lx = run_heartbeat(&lx_cfg);
        let nk = run_heartbeat(&nk_cfg);
        prop_assert!(nk.fraction_of_target() >= lx.fraction_of_target() - 1e-9);
        prop_assert!(nk.interbeat_cv <= lx.interbeat_cv + 1e-9);
        prop_assert!(nk.overhead_pct <= lx.overhead_pct + 1e-9);
    }

    /// The framekernel mid-point never dominates NK and is never dominated
    /// by Linux, under any sampled configuration.
    #[test]
    fn aster_stays_between_the_endpoints(
        target_us in 10.0f64..200.0,
        handler in 200u64..2_000,
    ) {
        use interweave_core::stack::OsPoint;
        use interweave_core::Cycles;
        use interweave_heartbeat::sim::{run_heartbeat, HeartbeatConfig};
        let mk = |os| {
            let mut cfg = HeartbeatConfig::fig3(os, target_us, Cycles(handler));
            cfg.duration_us = target_us * 200.0;
            run_heartbeat(&cfg)
        };
        let nk = mk(OsPoint::NkLike);
        let fk = mk(OsPoint::AsterLike);
        let lx = mk(OsPoint::LinuxLike);
        prop_assert!(fk.fraction_of_target() >= lx.fraction_of_target() - 1e-9);
        prop_assert!(fk.fraction_of_target() <= nk.fraction_of_target() + 1e-9);
        prop_assert!(fk.interbeat_cv >= nk.interbeat_cv - 1e-9);
        prop_assert!(fk.interbeat_cv <= lx.interbeat_cv + 1e-9);
        prop_assert!(fk.overhead_pct >= nk.overhead_pct - 1e-9);
        prop_assert!(fk.overhead_pct <= lx.overhead_pct + 1e-9);
    }
}
