//! A block-device completion model: interrupt, coalesced-interrupt, and
//! blended-polling completion delivery.
//!
//! §V-C's blended-driver claim covers devices generally; block storage adds
//! a wrinkle the NIC model doesn't have: completions arrive in bursts
//! (queue depth), so the conventional mitigation is *interrupt coalescing*
//! — fire once per K completions or per timeout. Coalescing trades latency
//! for interrupt rate; blended polling gets the low interrupt count *and*
//! poll-bounded latency, which is the §V-C argument in a device class where
//! the commodity stack already has its best countermeasure deployed.

use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stats::Summary;

/// How completions reach the submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionMode {
    /// One interrupt per completion.
    InterruptPerCompletion,
    /// Interrupt per `k` completions or per timeout, whichever first.
    Coalesced {
        /// Completions per interrupt.
        k: u32,
        /// Timeout in cycles.
        timeout: u64,
    },
    /// Compiler-injected polls at a bounded gap.
    BlendedPolling {
        /// Maximum dynamic gap between polls (from the injection pass's
        /// placement bound).
        poll_gap: u64,
    },
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct BlockConfig {
    /// I/O requests submitted.
    pub requests: usize,
    /// Mean inter-submission gap (cycles).
    pub submit_gap: u64,
    /// Device service latency: uniform in `[lo, hi]` cycles.
    pub service: (u64, u64),
    /// Completion-handler work per request (cycles).
    pub handler: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for BlockConfig {
    fn default() -> BlockConfig {
        BlockConfig {
            requests: 2_000,
            submit_gap: 2_500,
            service: (8_000, 20_000),
            handler: 300,
            seed: 5,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Mode measured.
    pub mode: CompletionMode,
    /// Completion latency (device-done → handler-done), cycles.
    pub latency: Summary,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Cycles spent in delivery machinery (dispatch + polls + handlers).
    pub delivery_cycles: u64,
}

/// Run the block-device experiment under one completion mode.
pub fn run_block(cfg: &BlockConfig, mc: &MachineConfig, mode: CompletionMode) -> BlockReport {
    let mut rng = SplitMix64::new(cfg.seed);
    // Generate submission and device-completion times.
    let mut done_times: Vec<u64> = Vec::with_capacity(cfg.requests);
    let mut t = 0u64;
    for _ in 0..cfg.requests {
        t += rng.range(cfg.submit_gap / 2, cfg.submit_gap * 3 / 2);
        let service = rng.range(cfg.service.0, cfg.service.1);
        done_times.push(t + service);
    }
    done_times.sort_unstable();

    let dispatch = mc.dispatch_cost().get() + mc.cost.intr_return.get();
    let mut latency = Summary::new();
    let mut interrupts = 0u64;
    let mut delivery = 0u64;

    match mode {
        CompletionMode::InterruptPerCompletion => {
            for &d in &done_times {
                interrupts += 1;
                delivery += dispatch + cfg.handler;
                latency.add((dispatch + cfg.handler) as f64);
                let _ = d;
            }
        }
        CompletionMode::Coalesced { k, timeout } => {
            // Batch completions: an interrupt fires when k are pending or
            // the oldest pending completion is `timeout` old.
            let mut pending: Vec<u64> = Vec::new();
            let mut i = 0;
            while i < done_times.len() {
                pending.push(done_times[i]);
                i += 1;
                let oldest = pending[0];
                let fire_now = pending.len() as u32 >= k
                    || done_times
                        .get(i)
                        .map(|&next| next > oldest + timeout)
                        .unwrap_or(true);
                if fire_now {
                    let fire_at = (oldest + timeout)
                        .min(*pending.last().expect("non-empty"))
                        .max(*pending.last().expect("non-empty"));
                    interrupts += 1;
                    delivery += dispatch;
                    let mut h = fire_at + dispatch;
                    for &p in &pending {
                        h += cfg.handler;
                        delivery += cfg.handler;
                        latency.add((h - p) as f64);
                    }
                    pending.clear();
                }
            }
        }
        CompletionMode::BlendedPolling { poll_gap } => {
            // Polls occur at every multiple of poll_gap (the placement
            // bound); completions wait for the next poll. Poll checks are
            // charged whether or not work is found.
            let horizon = done_times.last().copied().unwrap_or(0) + poll_gap;
            let polls = horizon / poll_gap + 1;
            delivery += polls * 3; // constant-time check
            for &d in &done_times {
                let poll_at = d.div_ceil(poll_gap) * poll_gap;
                let finish = poll_at + cfg.handler;
                delivery += cfg.handler;
                latency.add((finish - d) as f64);
            }
        }
    }

    BlockReport {
        mode,
        latency,
        interrupts,
        delivery_cycles: delivery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MachineConfig {
        MachineConfig::xeon_server_2s()
    }

    #[test]
    fn polling_eliminates_interrupts_entirely() {
        let r = run_block(
            &BlockConfig::default(),
            &mc(),
            CompletionMode::BlendedPolling { poll_gap: 400 },
        );
        assert_eq!(r.interrupts, 0);
        assert_eq!(r.latency.count(), 2_000);
    }

    #[test]
    fn coalescing_trades_latency_for_interrupt_rate() {
        let cfg = BlockConfig::default();
        let per = run_block(&cfg, &mc(), CompletionMode::InterruptPerCompletion);
        let coal = run_block(
            &cfg,
            &mc(),
            CompletionMode::Coalesced {
                k: 16,
                timeout: 30_000,
            },
        );
        assert!(
            coal.interrupts * 4 < per.interrupts,
            "coalescing must cut interrupts"
        );
        assert!(
            coal.latency.mean() > per.latency.mean(),
            "coalescing must cost latency: {} vs {}",
            coal.latency.mean(),
            per.latency.mean()
        );
    }

    #[test]
    fn blending_beats_coalescing_on_both_axes() {
        // The §V-C pitch: tight poll bounds give lower latency than the
        // coalesced configuration AND zero interrupts.
        let cfg = BlockConfig::default();
        let coal = run_block(
            &cfg,
            &mc(),
            CompletionMode::Coalesced {
                k: 16,
                timeout: 30_000,
            },
        );
        let poll = run_block(
            &cfg,
            &mc(),
            CompletionMode::BlendedPolling { poll_gap: 400 },
        );
        assert!(poll.latency.mean() < coal.latency.mean());
        assert!(poll.interrupts < coal.interrupts);
    }

    #[test]
    fn poll_gap_bounds_worst_case_latency() {
        let cfg = BlockConfig::default();
        for gap in [200u64, 1_000, 5_000] {
            let r = run_block(
                &cfg,
                &mc(),
                CompletionMode::BlendedPolling { poll_gap: gap },
            );
            assert!(
                r.latency.max() <= (gap + cfg.handler) as f64,
                "gap {gap}: max latency {}",
                r.latency.max()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = BlockConfig::default();
        let a = run_block(&cfg, &mc(), CompletionMode::InterruptPerCompletion);
        let b = run_block(&cfg, &mc(), CompletionMode::InterruptPerCompletion);
        assert_eq!(a.interrupts, b.interrupts);
        assert!((a.latency.mean() - b.latency.mean()).abs() < 1e-12);
    }
}
