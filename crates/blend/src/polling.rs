//! Blended device drivers: compiler-injected polling.
//!
//! The pass places `poll_devices()` checks exactly where compiler-based
//! timing places time checks (loop headers, function entries, long
//! straight-line runs), so polls execute at a bounded dynamic interval on
//! every path. The experiment runs a real (IR) program over a stream of
//! device events and compares:
//!
//! - **interrupt-driven**: each event interrupts the program (dispatch +
//!   handler + return stolen from compute);
//! - **blended polling**: events wait for the next injected poll; the poll
//!   itself is a constant-time check.
//!
//! The §V-C claim is qualitative — polled devices "appear to behave as if
//! they were interrupt-driven, but no interrupts ever occur" — which the
//! tests make quantitative: comparable service latency at bounded poll
//! gaps, lower CPU cost per event, zero interrupt dispatches.

use interweave_core::machine::MachineConfig;
use interweave_core::rng::SplitMix64;
use interweave_core::stats::Summary;
use interweave_ir::analysis::{Cfg, Dominators, LoopForest};
use interweave_ir::inst::{Inst, Intrinsic};
use interweave_ir::interp::{HookAction, Interp, InterpConfig, Memory, RuntimeHooks};
use interweave_ir::passes::{Pass, PassStats};
use interweave_ir::programs::Program;
use interweave_ir::types::Val;
use interweave_ir::Module;

/// The poll-injection pass (placement identical to timing injection —
/// §V-C: "the compiler injects this polling check throughout the kernel
/// using compiler-based timing").
#[derive(Debug, Clone)]
pub struct InjectPolling {
    /// Maximum straight-line instructions between polls.
    pub max_run: usize,
}

impl Default for InjectPolling {
    fn default() -> InjectPolling {
        InjectPolling { max_run: 48 }
    }
}

impl Pass for InjectPolling {
    fn name(&self) -> &'static str {
        "inject-polling"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            let cfg = Cfg::build(f);
            let dom = Dominators::compute(&cfg);
            let loops = LoopForest::find(&cfg, &dom);
            let mut check_blocks: Vec<usize> = vec![0];
            for l in &loops.loops {
                check_blocks.push(l.header.index());
            }
            check_blocks.sort_unstable();
            check_blocks.dedup();

            for (bi, b) in f.blocks.iter_mut().enumerate() {
                let mut out = Vec::with_capacity(b.insts.len() + 2);
                if check_blocks.contains(&bi) {
                    out.push(Inst::Intr(None, Intrinsic::PollDevices, vec![]));
                    stats.bump("polls_inserted", 1);
                }
                let mut run = 0usize;
                for inst in b.insts.drain(..) {
                    let resets = matches!(
                        inst,
                        Inst::Call(_, _, _) | Inst::Intr(_, Intrinsic::PollDevices, _)
                    );
                    out.push(inst);
                    run = if resets { 0 } else { run + 1 };
                    if run >= self.max_run {
                        out.push(Inst::Intr(None, Intrinsic::PollDevices, vec![]));
                        stats.bump("polls_inserted", 1);
                        run = 0;
                    }
                }
                b.insts = out;
            }
        }
        stats
    }
}

/// How device events reach their handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Conventional: interrupt per event.
    InterruptDriven,
    /// Blended: compiler-injected polls.
    BlendedPolling,
}

/// Device and experiment parameters.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Mean inter-arrival gap between device events, cycles.
    pub mean_gap: u64,
    /// Handler work per event, cycles.
    pub handler: u64,
    /// RNG seed for arrivals.
    pub seed: u64,
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Drive mode.
    pub mode: DriveMode,
    /// Events serviced.
    pub serviced: u64,
    /// Service latency distribution (arrival → handler completion).
    pub latency: Summary,
    /// Total program cycles (compute + device machinery).
    pub total_cycles: u64,
    /// Cycles spent on device machinery (dispatch/poll + handler).
    pub device_cycles: u64,
    /// Interrupts dispatched.
    pub interrupts: u64,
}

/// Hooks servicing a pre-generated arrival stream at injected polls.
struct PollServer {
    arrivals: Vec<u64>,
    next: usize,
    handler: u64,
    latency: Summary,
    device_cycles: u64,
    polls: u64,
}

impl RuntimeHooks for PollServer {
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        _args: &[Val],
        _mem: &mut Memory,
        now: u64,
    ) -> HookAction {
        match which {
            Intrinsic::PollDevices => {
                self.polls += 1;
                // Constant-time check (§V-C): one flag test.
                let mut cycles = 3u64;
                self.device_cycles += 3;
                let mut t = now;
                while self.next < self.arrivals.len() && self.arrivals[self.next] <= t {
                    // Service in poll context: handler only, no dispatch.
                    t += self.handler;
                    cycles += self.handler;
                    self.device_cycles += self.handler;
                    self.latency.add((t - self.arrivals[self.next]) as f64);
                    self.next += 1;
                }
                HookAction::Continue {
                    value: None,
                    cycles,
                }
            }
            _ => HookAction::Continue {
                value: None,
                cycles: 0,
            },
        }
    }
}

fn gen_arrivals(cfg: &DeviceConfig, horizon: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut t = 0f64;
    let mut out = Vec::new();
    loop {
        t += rng.exponential(cfg.mean_gap as f64);
        if t as u64 >= horizon {
            break;
        }
        out.push(t as u64);
    }
    out
}

/// Run the device experiment over one program.
pub fn run_device_experiment(
    program: &Program,
    dev: &DeviceConfig,
    mc: &MachineConfig,
    mode: DriveMode,
) -> DeviceReport {
    match mode {
        DriveMode::BlendedPolling => {
            let mut m = program.module.clone();
            InjectPolling::default().run(&mut m);
            // Pre-generate more arrivals than the program can outlive; the
            // horizon is refined after the run.
            let mut probe = Interp::new(InterpConfig::default());
            probe.start(&m, program.entry, &program.args);
            // First pass to learn the program duration (deterministic).
            struct NoEvents;
            impl RuntimeHooks for NoEvents {
                fn intrinsic(
                    &mut self,
                    _w: Intrinsic,
                    _a: &[Val],
                    _m: &mut Memory,
                    _n: u64,
                ) -> HookAction {
                    HookAction::Continue {
                        value: None,
                        cycles: 3,
                    }
                }
            }
            probe.run_to_completion(&m, &mut NoEvents);
            let horizon = probe.stats.cycles;

            let mut server = PollServer {
                arrivals: gen_arrivals(dev, horizon),
                next: 0,
                handler: dev.handler,
                latency: Summary::new(),
                device_cycles: 0,
                polls: 0,
            };
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, program.entry, &program.args);
            it.run_to_completion(&m, &mut server);
            DeviceReport {
                mode,
                serviced: server.latency.count(),
                latency: server.latency,
                total_cycles: it.stats.cycles,
                device_cycles: server.device_cycles,
                interrupts: 0,
            }
        }
        DriveMode::InterruptDriven => {
            // The uninstrumented program runs; each event interrupts it.
            use interweave_ir::interp::NullHooks;
            let mut it = Interp::new(InterpConfig::default());
            it.start(&program.module, program.entry, &program.args);
            it.run_to_completion(&program.module, &mut NullHooks);
            let compute = it.stats.cycles;

            let per_event = mc.dispatch_cost().get() + dev.handler + mc.cost.intr_return.get();
            let arrivals = gen_arrivals(dev, compute);
            let mut latency = Summary::new();
            for _ in &arrivals {
                latency.add((mc.dispatch_cost().get() + dev.handler) as f64);
            }
            let device_cycles = per_event * arrivals.len() as u64;
            DeviceReport {
                mode,
                serviced: arrivals.len() as u64,
                latency,
                total_cycles: compute + device_cycles,
                device_cycles,
                interrupts: arrivals.len() as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interweave_ir::programs;
    use interweave_ir::verify::assert_valid;

    fn setup() -> (Program, DeviceConfig, MachineConfig) {
        (
            programs::stencil1d(96, 24),
            DeviceConfig {
                mean_gap: 4_000,
                handler: 250,
                seed: 21,
            },
            MachineConfig::xeon_server_2s(),
        )
    }

    #[test]
    fn injection_pass_is_valid_and_preserves_semantics() {
        use interweave_ir::interp::NullHooks;
        for p in programs::suite(1) {
            let mut base = Interp::new(InterpConfig::default());
            base.start(&p.module, p.entry, &p.args);
            let expected = base.run_to_completion(&p.module, &mut NullHooks);
            let mut m = p.module.clone();
            InjectPolling::default().run(&mut m);
            assert_valid(&m);
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, p.entry, &p.args);
            struct Quiet;
            impl RuntimeHooks for Quiet {
                fn intrinsic(
                    &mut self,
                    _w: Intrinsic,
                    _a: &[Val],
                    _m: &mut Memory,
                    _n: u64,
                ) -> HookAction {
                    HookAction::Continue {
                        value: None,
                        cycles: 3,
                    }
                }
            }
            let got = it.run_to_completion(&m, &mut Quiet);
            assert_eq!(got, expected, "{}", p.name);
        }
    }

    #[test]
    fn no_interrupts_ever_occur_under_blending() {
        let (p, dev, mc) = setup();
        let r = run_device_experiment(&p, &dev, &mc, DriveMode::BlendedPolling);
        assert_eq!(r.interrupts, 0);
        assert!(r.serviced > 10, "serviced only {}", r.serviced);
    }

    #[test]
    fn polled_latency_is_interrupt_like() {
        // "These devices appear to behave as if they were interrupt-driven":
        // mean polled service latency within a small multiple of the
        // interrupt path's.
        let (p, dev, mc) = setup();
        let pol = run_device_experiment(&p, &dev, &mc, DriveMode::BlendedPolling);
        let irq = run_device_experiment(&p, &dev, &mc, DriveMode::InterruptDriven);
        assert!(
            pol.latency.mean() < 3.0 * irq.latency.mean(),
            "polled {:.0} vs interrupt {:.0}",
            pol.latency.mean(),
            irq.latency.mean()
        );
    }

    #[test]
    fn blending_costs_less_cpu_per_event_at_high_rates() {
        let (p, mut dev, mc) = setup();
        dev.mean_gap = 1_500; // high event rate
        let pol = run_device_experiment(&p, &dev, &mc, DriveMode::BlendedPolling);
        let irq = run_device_experiment(&p, &dev, &mc, DriveMode::InterruptDriven);
        let pol_per_event = pol.device_cycles as f64 / pol.serviced.max(1) as f64;
        let irq_per_event = irq.device_cycles as f64 / irq.serviced.max(1) as f64;
        assert!(
            pol_per_event < irq_per_event,
            "polled {pol_per_event:.0}/event vs interrupt {irq_per_event:.0}/event"
        );
    }

    #[test]
    fn all_events_serviced_in_order() {
        let (p, dev, mc) = setup();
        let r = run_device_experiment(&p, &dev, &mc, DriveMode::BlendedPolling);
        // Latency is finite for every serviced event and positive.
        assert!(r.latency.min() >= 0.0);
        assert!(r.latency.max() < 1_000_000.0);
    }
}
