//! # interweave-blend
//!
//! Blending (§V-C of the paper): merging driver and application code so the
//! boundary between "the kernel handles devices" and "the program computes"
//! disappears.
//!
//! Two blending instances are built here:
//!
//! - [`polling`]: blended device drivers. "The normally interrupt-driven
//!   logic of the drivers is straightforwardly replaced with a constant-
//!   time poll check, and the compiler injects this polling check
//!   throughout the kernel using compiler-based timing. As a result, these
//!   devices appear to behave as if they were interrupt-driven, but no
//!   interrupts ever occur for them." The injection pass bounds the dynamic
//!   gap between polls; the device simulation compares service latency and
//!   CPU cost against interrupt-driven handling.
//! - [`block`]: a block-device completion study — blended polling versus
//!   the commodity stack's best countermeasure, interrupt coalescing.
//! - [`farmem`]: sub-page-granularity transparent far memory. "Current far
//!   memory systems either operate at page granularity ... or require
//!   programmer annotations ... Compiler blending can automatically make
//!   these decisions and evacuate objects to remote memory transparently."
//!   The model compares bytes moved and stall cycles for page- vs object-
//!   granularity transfer across object-density regimes, including the
//!   crossover where dense pages favour page granularity.

#![warn(missing_docs)]

pub mod block;
pub mod farmem;
pub mod polling;

pub use farmem::{run_farmem, FarMemConfig, FarMemReport, Granularity};
pub use polling::{run_device_experiment, DeviceConfig, DeviceReport, DriveMode, InjectPolling};
