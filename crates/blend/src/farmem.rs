//! Sub-page-granularity transparent far memory.
//!
//! §V-C: "Current far memory systems either operate at page granularity for
//! transparent swapping to remote nodes or require programmer annotations
//! tagging data structures as remotable. Compiler blending can
//! automatically make these decisions and evacuate objects to remote memory
//! transparently."
//!
//! The model: a working set of small objects scattered over 4 KiB pages
//! with a configurable *density* of hot objects per page. Cold data lives
//! remote. A hot-object access that misses locally triggers a transfer:
//!
//! - **page granularity** (kernel swapping): fault + RTT + 4096 bytes —
//!   one fault covers every other hot object on the same page;
//! - **object granularity** (compiler blending): inline residency checks;
//!   a page's hot objects gather in one round trip (the compiler knows the
//!   object set), paying per-object remote-lookup overhead but moving only
//!   hot bytes — cold neighbours never travel.
//!
//! The interesting output is the crossover: sparse pages favour objects
//! (bytes moved collapse), dense pages favour pages (amortized RTT).

use interweave_core::rng::SplitMix64;

/// Transfer granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Kernel page swapping (transparent, 4 KiB).
    Page,
    /// Compiler-blended object transfer (transparent, exact bytes).
    Object,
}

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct FarMemConfig {
    /// Pages in the remote working set.
    pub pages: usize,
    /// Objects per page (page_size / object_size).
    pub objects_per_page: usize,
    /// Object size in bytes.
    pub object_bytes: u64,
    /// Hot objects per page (the density knob).
    pub hot_per_page: usize,
    /// Accesses per hot object (re-use factor; transfers amortize over
    /// these).
    pub reuse: usize,
    /// Network round-trip latency in cycles.
    pub net_rtt: u64,
    /// Network bandwidth in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Page-fault cost (trap + kernel path) for the page-granularity path.
    pub fault_cost: u64,
    /// Residency-check cost (inline compiler-injected test) per access for
    /// the object-granularity path.
    pub check_cost: u64,
    /// Per-object remote gather overhead (remote-side lookup + scatter
    /// entry) when the blended runtime batches a page's hot objects into
    /// one round trip.
    pub gather_overhead: u64,
    /// RNG seed (hot-object placement).
    pub seed: u64,
}

impl Default for FarMemConfig {
    fn default() -> FarMemConfig {
        FarMemConfig {
            pages: 256,
            objects_per_page: 16, // 256-byte objects
            object_bytes: 256,
            hot_per_page: 2,
            reuse: 8,
            net_rtt: 6_000,       // ~2 µs at 3 GHz
            bytes_per_cycle: 8.0, // ~25 GB/s at 3 GHz
            fault_cost: 3_500,    // trap + kernel fault path
            check_cost: 3,
            gather_overhead: 400, // remote lookup + scatter entry
            seed: 17,
        }
    }
}

/// Measured outcome.
#[derive(Debug, Clone)]
pub struct FarMemReport {
    /// Granularity used.
    pub granularity: Granularity,
    /// Total bytes moved over the network.
    pub bytes_moved: u64,
    /// Total stall cycles waiting on transfers (+ checks/faults).
    pub stall_cycles: u64,
    /// Transfers performed.
    pub transfers: u64,
    /// Accesses served.
    pub accesses: u64,
}

/// Run the far-memory experiment at one granularity.
pub fn run_farmem(cfg: &FarMemConfig, granularity: Granularity) -> FarMemReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let page_bytes = cfg.objects_per_page as u64 * cfg.object_bytes;
    let mut bytes = 0u64;
    let mut stall = 0u64;
    let mut transfers = 0u64;
    let mut accesses = 0u64;

    for _page in 0..cfg.pages {
        // Choose which objects on this page are hot.
        let mut slots: Vec<usize> = (0..cfg.objects_per_page).collect();
        rng.shuffle(&mut slots);
        let hot = &slots[..cfg.hot_per_page.min(cfg.objects_per_page)];

        match granularity {
            Granularity::Page => {
                // First hot access faults the page in; everything after is
                // local.
                let transfer =
                    cfg.fault_cost + cfg.net_rtt + (page_bytes as f64 / cfg.bytes_per_cycle) as u64;
                stall += transfer;
                bytes += page_bytes;
                transfers += 1;
                accesses += (hot.len() * cfg.reuse) as u64;
            }
            Granularity::Object => {
                // The blended runtime knows the hot-object set (compiler
                // escape analysis) and gathers a page's hot objects in one
                // round trip, paying a per-object remote gather overhead —
                // but moving only their bytes. Every access also pays the
                // inline residency check.
                let k = hot.len() as u64;
                let hot_bytes = k * cfg.object_bytes;
                stall += cfg.net_rtt
                    + k * cfg.gather_overhead
                    + (hot_bytes as f64 / cfg.bytes_per_cycle) as u64;
                bytes += hot_bytes;
                transfers += k;
                let acc = (hot.len() * cfg.reuse) as u64;
                stall += acc * cfg.check_cost;
                accesses += acc;
            }
        }
    }

    FarMemReport {
        granularity,
        bytes_moved: bytes,
        stall_cycles: stall,
        transfers,
        accesses,
    }
}

/// Sweep hot-object density, returning `(hot_per_page, page_report,
/// object_report)` triples — the crossover series the bench binary prints.
pub fn density_sweep(base: &FarMemConfig) -> Vec<(usize, FarMemReport, FarMemReport)> {
    (1..=base.objects_per_page)
        .map(|hot| {
            let mut cfg = base.clone();
            cfg.hot_per_page = hot;
            (
                hot,
                run_farmem(&cfg, Granularity::Page),
                run_farmem(&cfg, Granularity::Object),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_pages_favour_object_granularity() {
        // The motivating FaaS/graph case: 1–2 hot objects per page.
        let cfg = FarMemConfig::default();
        let page = run_farmem(&cfg, Granularity::Page);
        let obj = run_farmem(&cfg, Granularity::Object);
        assert!(
            obj.bytes_moved * 4 < page.bytes_moved,
            "object {} vs page {} bytes",
            obj.bytes_moved,
            page.bytes_moved
        );
        assert!(
            obj.stall_cycles < page.stall_cycles,
            "object {} vs page {} stalls",
            obj.stall_cycles,
            page.stall_cycles
        );
    }

    #[test]
    fn dense_pages_favour_page_granularity() {
        let cfg = FarMemConfig {
            hot_per_page: 16, // the whole page is hot
            ..FarMemConfig::default()
        };
        let page = run_farmem(&cfg, Granularity::Page);
        let obj = run_farmem(&cfg, Granularity::Object);
        assert!(
            page.stall_cycles < obj.stall_cycles,
            "page {} vs object {}",
            page.stall_cycles,
            obj.stall_cycles
        );
    }

    #[test]
    fn sweep_has_a_crossover() {
        let series = density_sweep(&FarMemConfig::default());
        let first_winner = series
            .first()
            .map(|(_, p, o)| o.stall_cycles < p.stall_cycles);
        let last_winner = series
            .last()
            .map(|(_, p, o)| o.stall_cycles < p.stall_cycles);
        assert_eq!(first_winner, Some(true), "objects must win when sparse");
        assert_eq!(last_winner, Some(false), "pages must win when dense");
    }

    #[test]
    fn bytes_moved_scale_with_density_only_for_objects() {
        let sparse = FarMemConfig {
            hot_per_page: 1,
            ..FarMemConfig::default()
        };
        let dense = FarMemConfig {
            hot_per_page: 8,
            ..FarMemConfig::default()
        };
        let obj_sparse = run_farmem(&sparse, Granularity::Object);
        let obj_dense = run_farmem(&dense, Granularity::Object);
        assert_eq!(obj_dense.bytes_moved, 8 * obj_sparse.bytes_moved);
        let page_sparse = run_farmem(&sparse, Granularity::Page);
        let page_dense = run_farmem(&dense, Granularity::Page);
        assert_eq!(page_dense.bytes_moved, page_sparse.bytes_moved);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = FarMemConfig::default();
        let a = run_farmem(&cfg, Granularity::Object);
        let b = run_farmem(&cfg, Granularity::Object);
        assert_eq!(a.bytes_moved, b.bytes_moved);
        assert_eq!(a.stall_cycles, b.stall_cycles);
    }
}
