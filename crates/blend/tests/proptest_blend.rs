//! Property tests for blending: far-memory byte accounting and the poll-gap
//! latency bound, over arbitrary configurations.

use interweave_blend::block::{run_block, BlockConfig, CompletionMode};
use interweave_blend::farmem::{run_farmem, FarMemConfig, Granularity};
use interweave_core::machine::MachineConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte accounting is exact under any geometry: the page path moves
    /// whole pages, the object path moves exactly the hot bytes.
    #[test]
    fn farmem_byte_accounting(
        pages in 1usize..64,
        objects_per_page in 1usize..32,
        hot in 1usize..32,
        reuse in 1usize..16,
        seed in any::<u64>(),
    ) {
        let hot = hot.min(objects_per_page);
        let cfg = FarMemConfig {
            pages,
            objects_per_page,
            object_bytes: 128,
            hot_per_page: hot,
            reuse,
            seed,
            ..FarMemConfig::default()
        };
        let page = run_farmem(&cfg, Granularity::Page);
        let obj = run_farmem(&cfg, Granularity::Object);
        prop_assert_eq!(page.bytes_moved, (pages * objects_per_page) as u64 * 128);
        prop_assert_eq!(obj.bytes_moved, (pages * hot) as u64 * 128);
        prop_assert_eq!(obj.transfers, (pages * hot) as u64);
        prop_assert_eq!(page.transfers, pages as u64);
        prop_assert_eq!(page.accesses, obj.accesses);
        // Object path never moves more bytes than the page path.
        prop_assert!(obj.bytes_moved <= page.bytes_moved);
    }

    /// Under blended polling, no completion ever waits longer than one poll
    /// gap plus its handler, for any load.
    #[test]
    fn poll_gap_is_a_hard_latency_bound(
        gap in 100u64..10_000,
        submit_gap in 500u64..10_000,
        handler in 50u64..1_000,
        seed in any::<u64>(),
    ) {
        let cfg = BlockConfig {
            requests: 300,
            submit_gap,
            service: (2_000, 9_000),
            handler,
            seed,
        };
        let mc = MachineConfig::xeon_server_2s();
        let r = run_block(&cfg, &mc, CompletionMode::BlendedPolling { poll_gap: gap });
        prop_assert!(r.latency.max() <= (gap + handler) as f64);
        prop_assert_eq!(r.interrupts, 0);
    }
}
