//! Model-based equivalence: the page-backed [`Memory`] against a naive
//! reimplementation of the original seed layout — a per-word
//! `BTreeMap<u64, (i64, Option<u64>)>` plus a *linear* allocation list —
//! under arbitrary interleaved alloc/free/load/store/move sequences,
//! including provenance patching.
//!
//! The model deliberately reproduces the seed's allocator policy bit for
//! bit (first-fit over a coalescing free list, bump fallback, ids consumed
//! even by the transient home of a move), so every observable — returned
//! bases and ids, loaded values and provenance, traps, the free list, and
//! live-byte accounting — must agree exactly at every step.

use interweave_ir::interp::{AllocId, InterpConfig, Memory};
use interweave_ir::types::Val;
use proptest::prelude::*;
use std::collections::BTreeMap;

const HEAP_BASE: u64 = 0x10_000;
const HEAP_SIZE: u64 = 1 << 30;

/// The seed-layout reference: word map + linear allocation list.
struct ModelMemory {
    words: BTreeMap<u64, (i64, Option<u64>)>,
    /// Live allocations as `(id, base, size)` in creation order — lookups
    /// are linear scans, as in the pre-page implementation's
    /// `move_allocation`.
    allocs: Vec<(u64, u64, u64)>,
    free: BTreeMap<u64, u64>,
    bump: u64,
    limit: u64,
    next_id: u64,
    live_bytes: u64,
}

impl ModelMemory {
    fn new() -> ModelMemory {
        ModelMemory {
            words: BTreeMap::new(),
            allocs: Vec::new(),
            free: BTreeMap::new(),
            bump: HEAP_BASE,
            limit: HEAP_BASE + HEAP_SIZE,
            next_id: 1,
            live_bytes: 0,
        }
    }

    fn alloc(&mut self, size: u64) -> Option<(u64, u64, u64)> {
        let size = size.max(8).div_ceil(8) * 8;
        let slot = self
            .free
            .iter()
            .find(|(_, &sz)| sz >= size)
            .map(|(&b, &sz)| (b, sz));
        let base = if let Some((b, sz)) = slot {
            self.free.remove(&b);
            if sz > size {
                self.free.insert(b + size, sz - size);
            }
            b
        } else {
            let b = self.bump;
            if b + size > self.limit {
                return None;
            }
            self.bump += size;
            b
        };
        let id = self.next_id;
        self.next_id += 1;
        self.allocs.push((id, base, size));
        self.live_bytes += size;
        Some((id, base, size))
    }

    fn free(&mut self, addr: u64) -> Option<(u64, u64, u64)> {
        let pos = self.allocs.iter().position(|&(_, b, _)| b == addr)?;
        let a = self.allocs.remove(pos);
        let keys: Vec<u64> = self.words.range(a.1..a.1 + a.2).map(|(&k, _)| k).collect();
        for k in keys {
            self.words.remove(&k);
        }
        self.free.insert(a.1, a.2);
        self.coalesce_around(a.1);
        self.live_bytes -= a.2;
        Some(a)
    }

    fn coalesce_around(&mut self, base: u64) {
        if let Some(&size) = self.free.get(&base) {
            if let Some((&nb, &nsz)) = self.free.range(base + size..).next() {
                if nb == base + size {
                    self.free.remove(&nb);
                    *self.free.get_mut(&base).expect("present") = size + nsz;
                }
            }
        }
        if let Some((&pb, &psz)) = self.free.range(..base).next_back() {
            if pb + psz == base {
                let size = self.free.remove(&base).expect("present");
                *self.free.get_mut(&pb).expect("present") = psz + size;
            }
        }
    }

    fn containing(&self, addr: u64) -> Option<(u64, u64, u64)> {
        self.allocs
            .iter()
            .copied()
            .find(|&(_, b, s)| addr >= b && addr < b + s)
    }

    fn load(&self, addr: u64) -> Option<(i64, Option<u64>)> {
        self.containing(addr)?;
        Some(self.words.get(&addr).copied().unwrap_or((0, None)))
    }

    fn store(&mut self, addr: u64, val: i64, prov: Option<u64>) -> bool {
        if self.containing(addr).is_none() {
            return false;
        }
        self.words.insert(addr, (val, prov));
        true
    }

    fn move_allocation(&mut self, id: u64) -> Option<(u64, u64)> {
        let &(_, old_base, old_size) = self.allocs.iter().find(|&&(i, _, _)| i == id)?;
        let (new_id, new_base, _) = self.alloc(old_size)?;
        // The transient home keeps the moved allocation's identity.
        for a in self.allocs.iter_mut() {
            if a.0 == new_id {
                a.0 = id;
            }
        }
        let old_words: Vec<(u64, (i64, Option<u64>))> = self
            .words
            .range(old_base..old_base + old_size)
            .map(|(&k, &c)| (k, c))
            .collect();
        for (k, c) in &old_words {
            self.words.insert(new_base + (k - old_base), *c);
        }
        self.free(old_base)?;
        let patches: Vec<(u64, i64, Option<u64>)> = self
            .words
            .iter()
            .filter(|(_, c)| c.1 == Some(id))
            .map(|(&k, c)| (k, c.0, c.1))
            .collect();
        for (k, v, prov) in patches {
            let off = (v as u64).wrapping_sub(old_base);
            self.words.insert(k, ((new_base + off) as i64, prov));
        }
        Some((old_base, new_base))
    }
}

/// One step of the interleaved workload. Indices select among live
/// allocations modulo the live count at execution time.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        size: u64,
    },
    Free {
        idx: usize,
    },
    Load {
        idx: usize,
        slot: u64,
    },
    /// Store a plain value, or (when `ptr_idx` is set) a pointer into
    /// another live allocation, carrying provenance.
    Store {
        idx: usize,
        slot: u64,
        val: i64,
        ptr_idx: Option<usize>,
    },
    Move {
        idx: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (8u64..400).prop_map(|size| Op::Alloc { size }),
        any::<usize>().prop_map(|idx| Op::Free { idx }),
        (any::<usize>(), 0u64..64).prop_map(|(idx, slot)| Op::Load { idx, slot }),
        (any::<usize>(), 0u64..64, any::<i64>(), any::<usize>()).prop_map(
            |(idx, slot, val, ptr_sel)| Op::Store {
                idx,
                slot,
                val,
                // Half the stores carry provenance (a pointer into another
                // live allocation), half are plain values.
                ptr_idx: if ptr_sel % 2 == 0 {
                    None
                } else {
                    Some(ptr_sel >> 1)
                },
            }
        ),
        any::<usize>().prop_map(|idx| Op::Move { idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Page-backed memory and the seed-layout model observe identical
    /// results for every operation, and identical final state.
    #[test]
    fn page_backed_memory_matches_seed_layout_model(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        let cfg = InterpConfig {
            heap_base: HEAP_BASE,
            heap_size: HEAP_SIZE,
            ..InterpConfig::default()
        };
        let mut mem = Memory::new(&cfg);
        let mut model = ModelMemory::new();
        // Live allocations as (id, base, size), kept identically for both
        // sides (ids and bases must agree at creation).
        let mut live: Vec<(u64, u64, u64)> = Vec::new();

        for op in &ops {
            match *op {
                Op::Alloc { size } => {
                    let got = mem.alloc(size);
                    let want = model.alloc(size);
                    match (got, want) {
                        (Ok(a), Some((id, base, sz))) => {
                            prop_assert_eq!(a.id.0, id);
                            prop_assert_eq!(a.base, base);
                            prop_assert_eq!(a.size, sz);
                            live.push((id, base, sz));
                        }
                        (Err(_), None) => {}
                        (g, w) => prop_assert!(false, "alloc diverged: {g:?} vs {w:?}"),
                    }
                }
                Op::Free { idx } => {
                    if live.is_empty() { continue; }
                    let (_, base, _) = live.remove(idx % live.len());
                    let got = mem.free(base);
                    let want = model.free(base);
                    prop_assert_eq!(got.is_ok(), want.is_some(), "free diverged at {base:#x}");
                }
                Op::Load { idx, slot } => {
                    if live.is_empty() { continue; }
                    let (_, base, size) = live[idx % live.len()];
                    let addr = base + (slot * 8) % size;
                    let got = mem.load(addr).ok().map(|(v, p)| (v.as_i(), p.map(|i| i.0)));
                    let want = model.load(addr);
                    prop_assert_eq!(got, want, "load diverged at {:#x}", addr);
                }
                Op::Store { idx, slot, val, ptr_idx } => {
                    if live.is_empty() { continue; }
                    let (_, base, size) = live[idx % live.len()];
                    let addr = base + (slot * 8) % size;
                    let (val, prov) = match ptr_idx {
                        Some(pi) => {
                            let (pid, pbase, psize) = live[pi % live.len()];
                            // A pointer into the target, at a stable offset.
                            ((pbase + (slot * 8) % psize) as i64, Some(pid))
                        }
                        None => (val, None),
                    };
                    let got = mem
                        .store(addr, Val::I(val), prov.map(AllocId))
                        .is_ok();
                    let want = model.store(addr, val, prov);
                    prop_assert_eq!(got, want, "store diverged at {:#x}", addr);
                }
                Op::Move { idx } => {
                    if live.is_empty() { continue; }
                    let li = idx % live.len();
                    let (id, _, size) = live[li];
                    let got = mem.move_allocation(AllocId(id)).ok();
                    let want = model.move_allocation(id);
                    prop_assert_eq!(got, want, "move diverged for id {}", id);
                    if let Some((_, new_base)) = want {
                        live[li] = (id, new_base, size);
                        // Pointers we recorded in `live` stay by-id; stored
                        // pointer words were patched inside both memories.
                    }
                }
            }
        }

        // Final-state equivalence: allocator observables and every live word.
        prop_assert_eq!(mem.n_allocs(), model.allocs.len());
        prop_assert_eq!(mem.live_bytes, model.live_bytes);
        let model_free: Vec<(u64, u64)> = model.free.iter().map(|(&b, &s)| (b, s)).collect();
        prop_assert_eq!(mem.free_blocks(), model_free);
        for &(id, base, size) in &live {
            prop_assert_eq!(mem.base_of(AllocId(id)), Some(base));
            for off in (0..size).step_by(8) {
                let got = mem
                    .load(base + off)
                    .ok()
                    .map(|(v, p)| (v.as_i(), p.map(|i| i.0)));
                let want = model.load(base + off);
                prop_assert_eq!(got, want, "final word diverged at {:#x}+{}", base, off);
            }
        }
    }
}
