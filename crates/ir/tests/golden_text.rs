//! Golden-file tests for the textual IR: the printed form of the benchmark
//! builders is part of the public surface (images ship as text), so
//! unintentional changes to either the builders or the printer must show up
//! as a diff against the committed golden files.

use interweave_ir::programs;
use interweave_ir::text::{parse_module, print_module};

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}.ir", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing golden file {path}: {e}"))
}

/// Regenerate the golden files: `REGEN_GOLDEN=1 cargo test -p interweave-ir
/// --test golden_text`.
#[test]
fn regenerate_golden_files_when_requested() {
    if std::env::var("REGEN_GOLDEN").is_err() {
        return;
    }
    for (name, p) in [("fib", programs::fib(10)), ("dot", programs::dot(8))] {
        let path = format!("{}/tests/golden/{name}.ir", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, print_module(&p.module)).expect("writable golden dir");
        println!("regenerated {path}");
    }
}

#[test]
fn fib_matches_golden() {
    let p = programs::fib(10);
    let printed = print_module(&p.module);
    assert_eq!(
        printed,
        golden("fib"),
        "fib IR changed; if intentional, regenerate tests/golden/fib.ir"
    );
}

#[test]
fn dot_matches_golden() {
    let p = programs::dot(8);
    let printed = print_module(&p.module);
    assert_eq!(
        printed,
        golden("dot"),
        "dot IR changed; if intentional, regenerate tests/golden/dot.ir"
    );
}

#[test]
fn golden_files_parse_and_reprint_identically() {
    for name in ["fib", "dot"] {
        let text = golden(name);
        let m = parse_module(&text).expect("golden file parses");
        assert_eq!(print_module(&m), text, "{name} not a fixed point");
    }
}
