//! Property tests for the IR: interpreter arithmetic against a reference
//! evaluator, the memory model against a reference map, and allocation
//! movement preserving contents and pointers.

use interweave_ir::interp::{Interp, InterpConfig, Memory, NullHooks};
use interweave_ir::types::{FuncId, Val};
use interweave_ir::{BinOp, FunctionBuilder, Module};
use proptest::prelude::*;

/// A random arithmetic expression tree.
#[derive(Debug, Clone)]
enum Expr {
    X,
    Y,
    Const(i32),
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::X),
        Just(Expr::Y),
        (-100i32..100).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Xor),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b)))
    })
}

fn eval_ref(e: &Expr, x: i64, y: i64) -> i64 {
    match e {
        Expr::X => x,
        Expr::Y => y,
        Expr::Const(c) => *c as i64,
        Expr::Bin(op, a, b) => {
            let (va, vb) = (eval_ref(a, x, y), eval_ref(b, x, y));
            match op {
                BinOp::Add => va.wrapping_add(vb),
                BinOp::Sub => va.wrapping_sub(vb),
                BinOp::Mul => va.wrapping_mul(vb),
                BinOp::And => va & vb,
                BinOp::Or => va | vb,
                BinOp::Xor => va ^ vb,
                _ => unreachable!("not generated"),
            }
        }
    }
}

fn compile(e: &Expr, fb: &mut FunctionBuilder) -> interweave_ir::Reg {
    match e {
        Expr::X => fb.param(0),
        Expr::Y => fb.param(1),
        Expr::Const(c) => fb.const_i(*c as i64),
        Expr::Bin(op, a, b) => {
            let ra = compile(a, fb);
            let rb = compile(b, fb);
            fb.bin(*op, ra, rb)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Compiled expressions evaluate exactly like the reference evaluator.
    #[test]
    fn interpreter_matches_reference(e in expr(), x in -1000i64..1000, y in -1000i64..1000) {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("e", 2);
        let r = compile(&e, &mut fb);
        fb.ret(Some(r));
        m.add(fb.finish());
        interweave_ir::verify::assert_valid(&m);

        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[Val::I(x), Val::I(y)]);
        let got = it.run_to_completion(&m, &mut NullHooks);
        prop_assert_eq!(got, Some(Val::I(eval_ref(&e, x, y))));
    }

    /// The memory model behaves like a map: stores are read back exactly,
    /// within live allocations, and frees make addresses invalid.
    #[test]
    fn memory_matches_reference_map(
        writes in prop::collection::vec((0usize..4, 0u64..8, -1000i64..1000), 1..100)
    ) {
        let cfg = InterpConfig::default();
        let mut mem = Memory::new(&cfg);
        let allocs: Vec<_> = (0..4).map(|_| mem.alloc(64).unwrap()).collect();
        let mut reference = std::collections::HashMap::new();
        for (ai, slot, v) in writes {
            let addr = allocs[ai].base + slot * 8;
            mem.store(addr, Val::I(v), None).unwrap();
            reference.insert(addr, v);
        }
        for (addr, v) in &reference {
            let (got, _) = mem.load(*addr).unwrap();
            prop_assert_eq!(got, Val::I(*v));
        }
        // Untouched words read as zero.
        let (zero, _) = mem.load(allocs[0].base + 8 * 7).unwrap_or((Val::I(0), None));
        let _ = zero;
        // Free the first allocation: all its words become invalid.
        mem.free(allocs[0].base).unwrap();
        prop_assert!(mem.load(allocs[0].base).is_err());
    }

    /// Moving an allocation preserves every word and patches every stored
    /// pointer, for arbitrary contents.
    #[test]
    fn move_allocation_is_transparent(
        values in prop::collection::vec(-1000i64..1000, 1..8),
        ptr_slots in prop::collection::vec(0u64..8, 0..4)
    ) {
        let cfg = InterpConfig::default();
        let mut mem = Memory::new(&cfg);
        let target = mem.alloc(64).unwrap();
        let holder = mem.alloc(64).unwrap();
        for (i, &v) in values.iter().enumerate() {
            mem.store(target.base + i as u64 * 8, Val::I(v), None).unwrap();
        }
        // Store pointers to target at chosen holder slots.
        for (i, &slot) in ptr_slots.iter().enumerate() {
            let offset = (i as u64 % 8) * 8;
            mem.store(
                holder.base + slot * 8,
                Val::I((target.base + offset) as i64),
                Some(target.id),
            )
            .unwrap();
        }
        let (old, new) = mem.move_allocation(target.id).unwrap();
        prop_assert_ne!(old, new);
        // Contents preserved at the new home.
        for (i, &v) in values.iter().enumerate() {
            let (got, _) = mem.load(new + i as u64 * 8).unwrap();
            prop_assert_eq!(got, Val::I(v));
        }
        // Every stored pointer now points into the new home.
        for &slot in &ptr_slots {
            let (p, prov) = mem.load(holder.base + slot * 8).unwrap();
            let pv = p.as_ptr();
            prop_assert!(pv >= new && pv < new + target.size, "unpatched pointer {pv:#x}");
            prop_assert_eq!(prov, Some(target.id));
        }
    }
}

// ---------------------------------------------------------------------------
// Text-format properties.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printing then parsing reproduces random expression modules exactly.
    #[test]
    fn text_round_trips_random_modules(e in expr()) {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("e", 2);
        let r = compile(&e, &mut fb);
        fb.ret(Some(r));
        m.add(fb.finish());
        let text = interweave_ir::text::print_module(&m);
        let back = interweave_ir::text::parse_module(&text).expect("round trip parses");
        prop_assert_eq!(back, m);
    }

    /// The parser never panics on arbitrary input: it returns Ok or Err.
    #[test]
    fn parser_is_panic_free_on_garbage(src in ".{0,400}") {
        let _ = interweave_ir::text::parse_module(&src);
    }

    /// Structured-looking garbage (valid header, junk body) is also safe.
    #[test]
    fn parser_is_panic_free_on_near_miss_input(body in "[%a-z0-9 =,\\[\\]+-]{0,120}") {
        let src = format!("fn @f(params=0, regs=4) {{\nbb0:\n  {body}\n  ret\n}}\n");
        let _ = interweave_ir::text::parse_module(&src);
    }
}
