//! A textual IR format: printing and parsing.
//!
//! Useful for golden tests, debugging transformed modules, and shipping
//! virtine/PIK images as artifacts. The syntax is line-oriented:
//!
//! ```text
//! fn @fib(params=1, regs=7) virtine {
//! bb0:
//!   %1 = const 2
//!   %2 = cmp.lt %0, %1
//!   condbr %2, bb1, bb2
//! bb1:
//!   ret %0
//! bb2:
//!   %3 = const 1
//!   %4 = sub %0, %3
//!   %5 = call @fib(%4)
//!   ...
//! }
//! ```
//!
//! `parse_module(&print_module(&m))` reproduces `m` exactly (the round-trip
//! property test in `tests/` checks this over every benchmark program and
//! its CARAT-instrumented form).

use crate::func::{Block, Function};
use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Term};
use crate::module::Module;
use crate::types::{BlockId, FuncId, Reg};
use std::fmt::Write as _;

/// A parse failure, with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::FAdd => "fadd",
        BinOp::FSub => "fsub",
        BinOp::FMul => "fmul",
        BinOp::FDiv => "fdiv",
    }
}

fn binop_from(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmp_from(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn intr_name(i: Intrinsic) -> &'static str {
    match i {
        Intrinsic::CaratGuard => "carat_guard",
        Intrinsic::CaratGuardRange => "carat_guard_range",
        Intrinsic::CaratTrackAlloc => "carat_track_alloc",
        Intrinsic::CaratTrackFree => "carat_track_free",
        Intrinsic::CaratTrackEscape => "carat_track_escape",
        Intrinsic::TimeCheck => "time_check",
        Intrinsic::PollDevices => "poll_devices",
        Intrinsic::Yield => "yield",
        Intrinsic::Promote => "promote",
        Intrinsic::ReadTimer => "read_timer",
        Intrinsic::Trace => "trace",
    }
}

fn intr_from(s: &str) -> Option<Intrinsic> {
    Some(match s {
        "carat_guard" => Intrinsic::CaratGuard,
        "carat_guard_range" => Intrinsic::CaratGuardRange,
        "carat_track_alloc" => Intrinsic::CaratTrackAlloc,
        "carat_track_free" => Intrinsic::CaratTrackFree,
        "carat_track_escape" => Intrinsic::CaratTrackEscape,
        "time_check" => Intrinsic::TimeCheck,
        "poll_devices" => Intrinsic::PollDevices,
        "yield" => Intrinsic::Yield,
        "promote" => Intrinsic::Promote,
        "read_timer" => Intrinsic::ReadTimer,
        "trace" => Intrinsic::Trace,
        _ => return None,
    })
}

fn args_str(args: &[Reg]) -> String {
    args.iter()
        .map(|r| format!("%{}", r.0))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Print a module in the textual format.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for f in &m.funcs {
        let v = if f.is_virtine { " virtine" } else { "" };
        let _ = writeln!(
            out,
            "fn @{}(params={}, regs={}){v} {{",
            f.name, f.n_params, f.n_regs
        );
        for (bi, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(out, "bb{bi}:");
            for i in &b.insts {
                let _ = writeln!(out, "  {}", print_inst(i, m));
            }
            match &b.term {
                Some(Term::Br(t)) => {
                    let _ = writeln!(out, "  br bb{}", t.0);
                }
                Some(Term::CondBr(c, t, e)) => {
                    let _ = writeln!(out, "  condbr %{}, bb{}, bb{}", c.0, t.0, e.0);
                }
                Some(Term::Ret(Some(r))) => {
                    let _ = writeln!(out, "  ret %{}", r.0);
                }
                Some(Term::Ret(None)) => {
                    let _ = writeln!(out, "  ret");
                }
                None => {
                    let _ = writeln!(out, "  <unterminated>");
                }
            }
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn print_inst(i: &Inst, m: &Module) -> String {
    match i {
        Inst::ConstI(d, v) => format!("%{} = const {v}", d.0),
        // {:?} prints f64 losslessly-enough for round-tripping through
        // Rust's shortest-representation formatter.
        Inst::ConstF(d, v) => format!("%{} = fconst {v:?}", d.0),
        Inst::Mov(d, s) => format!("%{} = mov %{}", d.0, s.0),
        Inst::Bin(d, op, a, b) => {
            format!("%{} = {} %{}, %{}", d.0, binop_name(*op), a.0, b.0)
        }
        Inst::Cmp(d, op, a, b) => {
            format!("%{} = cmp.{} %{}, %{}", d.0, cmp_name(*op), a.0, b.0)
        }
        Inst::Select(d, c, a, b) => {
            format!("%{} = select %{}, %{}, %{}", d.0, c.0, a.0, b.0)
        }
        Inst::Alloc(d, s) => format!("%{} = alloc %{}", d.0, s.0),
        Inst::Free(p) => format!("free %{}", p.0),
        Inst::Load(d, a, off) => format!("%{} = load [%{}{:+}]", d.0, a.0, off),
        Inst::Store(a, off, v) => format!("store [%{}{:+}], %{}", a.0, off, v.0),
        Inst::Gep(d, b, i, scale, off) => {
            format!("%{} = gep %{}, %{}, {scale}, {off}", d.0, b.0, i.0)
        }
        Inst::Call(d, g, args) => {
            let callee = &m.func(*g).name;
            match d {
                Some(d) => format!("%{} = call @{}({})", d.0, callee, args_str(args)),
                None => format!("call @{}({})", callee, args_str(args)),
            }
        }
        Inst::Intr(d, which, args) => match d {
            Some(d) => format!("%{} = intr {}({})", d.0, intr_name(*which), args_str(args)),
            None => format!("intr {}({})", intr_name(*which), args_str(args)),
        },
    }
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    at: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        // Report the line most recently consumed (errors surface after
        // `next()` has advanced past the offending line).
        let idx = self
            .at
            .saturating_sub(1)
            .min(self.lines.len().saturating_sub(1));
        let line = self.lines.get(idx).map(|&(n, _)| n).unwrap_or(0);
        Err(ParseError {
            line,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.at).map(|&(_, s)| s)
    }

    fn next(&mut self) -> Option<&'a str> {
        let s = self.peek();
        if s.is_some() {
            self.at += 1;
        }
        s
    }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    tok.strip_prefix('%')
        .and_then(|n| n.trim_end_matches(',').parse::<u32>().ok())
        .map(Reg)
}

fn parse_block_ref(tok: &str) -> Option<BlockId> {
    tok.strip_prefix("bb")
        .and_then(|n| n.trim_end_matches(',').parse::<u32>().ok())
        .map(BlockId)
}

fn parse_args(inner: &str) -> Option<Vec<Reg>> {
    let inner = inner.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|t| parse_reg(t.trim()))
        .collect::<Option<Vec<_>>>()
}

/// Parse a module from the textual format. Function references resolve by
/// name, so forward references are allowed; the result is verified.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let lines: Vec<(usize, &str)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with(';'))
        .collect();
    let mut p = Parser { lines, at: 0 };

    // First pass: function names in order (for call resolution).
    let mut names = Vec::new();
    for &(_, l) in &p.lines {
        if let Some(rest) = l.strip_prefix("fn @") {
            let name = rest.split('(').next().unwrap_or("").to_string();
            names.push(name);
        }
    }

    let mut m = Module::new();
    while p.peek().is_some() {
        let f = parse_function(&mut p, &names)?;
        m.add(f);
    }
    let errs = crate::verify::verify_module(&m);
    if let Some(e) = errs.first() {
        return Err(ParseError {
            line: 0,
            msg: format!("verification failed: {e}"),
        });
    }
    Ok(m)
}

fn parse_function(p: &mut Parser<'_>, names: &[String]) -> Result<Function, ParseError> {
    let header = match p.next() {
        Some(h) => h,
        None => return p.err("expected function header"),
    };
    let rest = match header.strip_prefix("fn @") {
        Some(r) => r,
        None => return p.err(format!("expected `fn @...`, found `{header}`")),
    };
    let (name, rest) = match rest.split_once('(') {
        Some(x) => x,
        None => return p.err("malformed function header"),
    };
    let (params_part, tail) = match rest.split_once(')') {
        Some(x) => x,
        None => return p.err("missing `)` in header"),
    };
    let mut n_params = 0usize;
    let mut n_regs = 0usize;
    for kv in params_part.split(',') {
        let kv = kv.trim();
        if let Some(v) = kv.strip_prefix("params=") {
            n_params = v.parse().map_err(|_| ParseError {
                line: 0,
                msg: "bad params=".into(),
            })?;
        } else if let Some(v) = kv.strip_prefix("regs=") {
            n_regs = v.parse().map_err(|_| ParseError {
                line: 0,
                msg: "bad regs=".into(),
            })?;
        }
    }
    let is_virtine = tail.contains("virtine");
    if !tail.trim_end().ends_with('{') {
        return p.err("expected `{` at end of header");
    }

    let mut blocks: Vec<Block> = Vec::new();
    loop {
        let line = match p.next() {
            Some(l) => l,
            None => return p.err("unexpected end of input in function body"),
        };
        if line == "}" {
            break;
        }
        if let Some(lbl) = line.strip_suffix(':') {
            let id = parse_block_ref(lbl)
                .ok_or(ParseError {
                    line: 0,
                    msg: format!("bad block label `{lbl}`"),
                })?
                .index();
            if id != blocks.len() {
                return p.err(format!("blocks must be declared in order; got bb{id}"));
            }
            blocks.push(Block::new());
            continue;
        }
        let b = match blocks.last_mut() {
            Some(b) => b,
            None => return p.err("instruction before any block label"),
        };
        if b.term.is_some() {
            return p.err("instruction after terminator");
        }
        match parse_line(line, names) {
            Ok(Parsed::Inst(i)) => b.insts.push(i),
            Ok(Parsed::Term(t)) => b.term = Some(t),
            Err(msg) => return p.err(msg),
        }
    }

    Ok(Function {
        name: name.to_string(),
        n_params,
        n_regs,
        blocks,
        is_virtine,
    })
}

enum Parsed {
    Inst(Inst),
    Term(Term),
}

fn parse_line(line: &str, names: &[String]) -> Result<Parsed, String> {
    // Terminators.
    if let Some(rest) = line.strip_prefix("br ") {
        let t = parse_block_ref(rest.trim()).ok_or("bad br target")?;
        return Ok(Parsed::Term(Term::Br(t)));
    }
    if let Some(rest) = line.strip_prefix("condbr ") {
        let toks: Vec<&str> = rest.split_whitespace().collect();
        if toks.len() != 3 {
            return Err("condbr needs 3 operands".into());
        }
        let c = parse_reg(toks[0]).ok_or("bad condbr cond")?;
        let t = parse_block_ref(toks[1]).ok_or("bad condbr then")?;
        let e = parse_block_ref(toks[2]).ok_or("bad condbr else")?;
        return Ok(Parsed::Term(Term::CondBr(c, t, e)));
    }
    if line == "ret" {
        return Ok(Parsed::Term(Term::Ret(None)));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        let r = parse_reg(rest.trim()).ok_or("bad ret value")?;
        return Ok(Parsed::Term(Term::Ret(Some(r))));
    }

    // Void instructions.
    if let Some(rest) = line.strip_prefix("free ") {
        let r = parse_reg(rest.trim()).ok_or("bad free operand")?;
        return Ok(Parsed::Inst(Inst::Free(r)));
    }
    if let Some(rest) = line.strip_prefix("store [") {
        // store [%a+off], %v
        let (addr_part, rest) = rest.split_once(']').ok_or("missing ] in store")?;
        let (a, off) = parse_addr(addr_part)?;
        let v = parse_reg(rest.trim_start_matches(',').trim()).ok_or("bad store value")?;
        return Ok(Parsed::Inst(Inst::Store(a, off, v)));
    }
    if let Some(rest) = line.strip_prefix("call @") {
        let (inst, _) = parse_call(None, rest, names)?;
        return Ok(Parsed::Inst(inst));
    }
    if let Some(rest) = line.strip_prefix("intr ") {
        return Ok(Parsed::Inst(parse_intr(None, rest)?));
    }

    // `%d = ...` forms.
    let (dst_tok, rhs) = line
        .split_once('=')
        .ok_or(format!("unrecognized line `{line}`"))?;
    let d = parse_reg(dst_tok.trim()).ok_or("bad destination register")?;
    let rhs = rhs.trim();

    if let Some(v) = rhs.strip_prefix("const ") {
        let v: i64 = v.trim().parse().map_err(|_| "bad const")?;
        return Ok(Parsed::Inst(Inst::ConstI(d, v)));
    }
    if let Some(v) = rhs.strip_prefix("fconst ") {
        let v: f64 = v.trim().parse().map_err(|_| "bad fconst")?;
        return Ok(Parsed::Inst(Inst::ConstF(d, v)));
    }
    if let Some(s) = rhs.strip_prefix("mov ") {
        let s = parse_reg(s.trim()).ok_or("bad mov source")?;
        return Ok(Parsed::Inst(Inst::Mov(d, s)));
    }
    if let Some(rest) = rhs.strip_prefix("cmp.") {
        let (op, ops) = rest.split_once(' ').ok_or("bad cmp")?;
        let op = cmp_from(op).ok_or("unknown cmp op")?;
        let regs = parse_args(ops).ok_or("bad cmp operands")?;
        if regs.len() != 2 {
            return Err("cmp needs 2 operands".into());
        }
        return Ok(Parsed::Inst(Inst::Cmp(d, op, regs[0], regs[1])));
    }
    if let Some(ops) = rhs.strip_prefix("select ") {
        let regs = parse_args(ops).ok_or("bad select operands")?;
        if regs.len() != 3 {
            return Err("select needs 3 operands".into());
        }
        return Ok(Parsed::Inst(Inst::Select(d, regs[0], regs[1], regs[2])));
    }
    if let Some(s) = rhs.strip_prefix("alloc ") {
        let s = parse_reg(s.trim()).ok_or("bad alloc size")?;
        return Ok(Parsed::Inst(Inst::Alloc(d, s)));
    }
    if let Some(rest) = rhs.strip_prefix("load [") {
        let addr_part = rest.strip_suffix(']').ok_or("missing ] in load")?;
        let (a, off) = parse_addr(addr_part)?;
        return Ok(Parsed::Inst(Inst::Load(d, a, off)));
    }
    if let Some(rest) = rhs.strip_prefix("gep ") {
        let toks: Vec<&str> = rest.split(',').map(|t| t.trim()).collect();
        if toks.len() != 4 {
            return Err("gep needs base, index, scale, offset".into());
        }
        let b = parse_reg(toks[0]).ok_or("bad gep base")?;
        let i = parse_reg(toks[1]).ok_or("bad gep index")?;
        let scale: i64 = toks[2].parse().map_err(|_| "bad gep scale")?;
        let off: i64 = toks[3].parse().map_err(|_| "bad gep offset")?;
        return Ok(Parsed::Inst(Inst::Gep(d, b, i, scale, off)));
    }
    if let Some(rest) = rhs.strip_prefix("call @") {
        let (inst, _) = parse_call(Some(d), rest, names)?;
        return Ok(Parsed::Inst(inst));
    }
    if let Some(rest) = rhs.strip_prefix("intr ") {
        return Ok(Parsed::Inst(parse_intr(Some(d), rest)?));
    }
    // Binary ops: `op %a, %b`.
    if let Some((op, ops)) = rhs.split_once(' ') {
        if let Some(op) = binop_from(op) {
            let regs = parse_args(ops).ok_or("bad binop operands")?;
            if regs.len() != 2 {
                return Err("binop needs 2 operands".into());
            }
            return Ok(Parsed::Inst(Inst::Bin(d, op, regs[0], regs[1])));
        }
    }
    Err(format!("unrecognized instruction `{line}`"))
}

fn parse_addr(part: &str) -> Result<(Reg, i64), String> {
    // `%a+off` or `%a-off` (printed with {:+}).
    let idx = part
        .char_indices()
        .skip(1)
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i)
        .ok_or("address needs an offset sign")?;
    let a = parse_reg(&part[..idx]).ok_or("bad address register")?;
    let off: i64 = part[idx..].parse().map_err(|_| "bad address offset")?;
    Ok((a, off))
}

fn parse_call(dst: Option<Reg>, rest: &str, names: &[String]) -> Result<(Inst, ()), String> {
    let (callee, args_part) = rest.split_once('(').ok_or("bad call syntax")?;
    let inner = args_part.strip_suffix(')').ok_or("missing ) in call")?;
    let args = parse_args(inner).ok_or("bad call args")?;
    let idx = names
        .iter()
        .position(|n| n == callee)
        .ok_or(format!("unknown function @{callee}"))?;
    Ok((Inst::Call(dst, FuncId(idx as u32), args), ()))
}

fn parse_intr(dst: Option<Reg>, rest: &str) -> Result<Inst, String> {
    let (name, args_part) = rest.split_once('(').ok_or("bad intr syntax")?;
    let inner = args_part.strip_suffix(')').ok_or("missing ) in intr")?;
    let which = intr_from(name.trim()).ok_or(format!("unknown intrinsic `{name}`"))?;
    let args = parse_args(inner).ok_or("bad intr args")?;
    Ok(Inst::Intr(dst, which, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn round_trips_the_benchmark_suite() {
        for p in programs::suite(1) {
            let text = print_module(&p.module);
            let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", p.name));
            assert_eq!(parsed, p.module, "{} did not round-trip", p.name);
        }
    }

    #[test]
    fn round_trips_negative_offsets_and_floats() {
        let src = "\
fn @f(params=1, regs=4) {
bb0:
  %1 = fconst 0.3333333333333333
  %2 = load [%0-8]
  store [%0+16], %2
  %3 = fmul %1, %1
  ret %2
}
";
        let m = parse_module(src).expect("parses");
        let text = print_module(&m);
        let again = parse_module(&text).expect("re-parses");
        assert_eq!(m, again);
    }

    #[test]
    fn parses_virtine_annotation_and_calls_by_name() {
        let src = "\
fn @helper(params=1, regs=2) {
bb0:
  %1 = mov %0
  ret %1
}
fn @entry(params=1, regs=2) virtine {
bb0:
  %1 = call @helper(%0)
  ret %1
}
";
        let m = parse_module(src).expect("parses");
        assert!(m.funcs[1].is_virtine);
        assert!(!m.funcs[0].is_virtine);
        // entry's call resolves to helper (function 0).
        let text = print_module(&m);
        assert!(text.contains("call @helper(%0)"));
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        let bad = "fn @f(params=0, regs=0) {\nbb0:\n  %0 = bogus %1\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("unrecognized"));
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let bad = "fn @f(params=0, regs=0) {\nbb1:\n  ret\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.msg.contains("in order"));
    }

    #[test]
    fn rejects_unverifiable_modules() {
        // Register out of range: parses syntactically, fails verification.
        let bad = "fn @f(params=0, regs=1) {\nbb0:\n  %0 = mov %9\n  ret\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.msg.contains("verification failed"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "\
; a leading comment
fn @f(params=0, regs=1) {

bb0:
  ; inside a block
  %0 = const 7

  ret %0
}
";
        let m = parse_module(src).expect("parses with comments");
        assert_eq!(m.funcs[0].name, "f");
        assert_eq!(m.inst_count(), 1);
    }
}
