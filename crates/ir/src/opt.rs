//! Classic cleanup optimizations: constant folding and dead-code
//! elimination.
//!
//! The interweaving passes leave tidy-up opportunities behind: guard flag
//! constants, hoisted-away address computations, unused induction copies.
//! These passes fold and remove them — and, more importantly for the
//! workspace, they are *adversaries* for the instrumentation passes' tests:
//! instrumentation must survive composition with an optimizer that deletes
//! everything unused and rewrites everything constant.
//!
//! Scope notes (kept deliberately conservative):
//! - folding only rewrites an instruction when **all** definitions of its
//!   operands are the same constant (the IR has mutable registers);
//! - DCE never removes memory operations, calls, intrinsics, or anything
//!   with observable effects; it removes pure value definitions whose
//!   results are never used anywhere in the function.

use crate::inst::{BinOp, CmpOp, Inst};
use crate::passes::{Pass, PassStats};
use crate::types::Reg;
use crate::Module;
use std::collections::HashMap;

/// Constant-folding pass.
#[derive(Debug, Default, Clone)]
pub struct ConstFold;

/// The single constant value a register holds across all its definitions,
/// if that is the case.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Known {
    I(i64),
    F(f64),
    /// Defined more than once with different values, or non-constant.
    Varies,
}

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            // Gather per-register constant-ness across the whole function
            // (sound without SSA: a register counts as constant only if
            // every definition assigns the same literal).
            let mut known: HashMap<Reg, Known> = HashMap::new();
            let mut note = |r: Reg, v: Known| match known.get(&r) {
                None => {
                    known.insert(r, v);
                }
                Some(&old) if old == v => {}
                Some(_) => {
                    known.insert(r, Known::Varies);
                }
            };
            for b in &f.blocks {
                for i in &b.insts {
                    match i {
                        Inst::ConstI(d, v) => note(*d, Known::I(*v)),
                        Inst::ConstF(d, v) => note(*d, Known::F(*v)),
                        other => {
                            if let Some(d) = other.def() {
                                note(d, Known::Varies);
                            }
                        }
                    }
                }
            }
            let get = |r: Reg| match known.get(&r) {
                Some(Known::I(v)) => Some(*v),
                _ => None,
            };

            // Rewrite foldable integer ops and comparisons in place.
            for b in &mut f.blocks {
                for i in &mut b.insts {
                    let folded = match i {
                        Inst::Bin(d, op, a, bb) => match (get(*a), get(*bb)) {
                            (Some(x), Some(y)) => fold_bin(*op, x, y).map(|v| Inst::ConstI(*d, v)),
                            _ => None,
                        },
                        Inst::Cmp(d, op, a, bb) => match (get(*a), get(*bb)) {
                            (Some(x), Some(y)) => {
                                Some(Inst::ConstI(*d, fold_cmp(*op, x, y) as i64))
                            }
                            _ => None,
                        },
                        Inst::Select(d, c, a, bb) => get(*c).map(|cv| {
                            let src = if cv != 0 { *a } else { *bb };
                            Inst::Mov(*d, src)
                        }),
                        _ => None,
                    };
                    if let Some(new) = folded {
                        *i = new;
                        stats.bump("folded", 1);
                    }
                }
            }
        }
        stats
    }
}

fn fold_bin(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None; // preserve the trap
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
        // Float ops are left alone (registers holding F constants fold via
        // a separate rule only when exactness is guaranteed; skipped).
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => return None,
    })
}

fn fold_cmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Dead-code elimination: remove pure value definitions whose registers are
/// never read.
#[derive(Debug, Default, Clone)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for f in &mut m.funcs {
            // Iterate: removing one dead def can orphan another.
            loop {
                let mut used = vec![false; f.n_regs];
                let mut buf = Vec::new();
                for b in &f.blocks {
                    for i in &b.insts {
                        buf.clear();
                        i.uses(&mut buf);
                        for r in &buf {
                            used[r.0 as usize] = true;
                        }
                    }
                    match &b.term {
                        Some(crate::inst::Term::CondBr(c, _, _)) => used[c.0 as usize] = true,
                        Some(crate::inst::Term::Ret(Some(r))) => used[r.0 as usize] = true,
                        _ => {}
                    }
                }
                // The return-value register and params count as used? Params
                // have no defining instruction; nothing to remove there.
                let mut removed = 0u64;
                for b in &mut f.blocks {
                    let before = b.insts.len();
                    b.insts.retain(|i| {
                        let pure = matches!(
                            i,
                            Inst::ConstI(_, _)
                                | Inst::ConstF(_, _)
                                | Inst::Mov(_, _)
                                | Inst::Bin(_, _, _, _)
                                | Inst::Cmp(_, _, _, _)
                                | Inst::Select(_, _, _, _)
                                | Inst::Gep(_, _, _, _, _)
                        );
                        if !pure {
                            return true;
                        }
                        match i.def() {
                            Some(d) => used[d.0 as usize],
                            None => true,
                        }
                    });
                    removed += (before - b.insts.len()) as u64;
                }
                if removed == 0 {
                    break;
                }
                stats.bump("removed", removed);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::interp::{Interp, InterpConfig, NullHooks};
    use crate::types::{FuncId, Val};
    use crate::verify::assert_valid;

    #[test]
    fn folds_constant_arithmetic() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.const_i(6);
        let b = fb.const_i(7);
        let c = fb.bin(BinOp::Mul, a, b);
        fb.ret(Some(c));
        m.add(fb.finish());
        let stats = ConstFold.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("folded"), 1);
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        assert_eq!(it.run_to_completion(&m, &mut NullHooks), Some(Val::I(42)));
    }

    #[test]
    fn does_not_fold_multiply_defined_registers() {
        // i is assigned 0 then 1: not a constant.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let z = fb.const_i(0);
        let i = fb.mov(z);
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one);
        let r = fb.bin(BinOp::Add, i, one);
        fb.ret(Some(r));
        m.add(fb.finish());
        let stats = ConstFold.run(&mut m);
        // Only ops over the true constants may fold; `i + one` must not.
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        assert_eq!(it.run_to_completion(&m, &mut NullHooks), Some(Val::I(2)));
        let _ = stats;
    }

    #[test]
    fn preserves_division_traps() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let a = fb.const_i(1);
        let z = fb.const_i(0);
        let d = fb.bin(BinOp::Div, a, z);
        fb.ret(Some(d));
        m.add(fb.finish());
        let stats = ConstFold.run(&mut m);
        assert_eq!(stats.get("folded"), 0, "div-by-zero must not fold away");
    }

    #[test]
    fn dce_removes_unused_pure_chains() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let p = fb.param(0);
        let a = fb.const_i(10); // dead
        let _b = fb.bin(BinOp::Add, a, a); // dead, depends on dead
        let one = fb.const_i(1);
        let r = fb.bin(BinOp::Add, p, one);
        fb.ret(Some(r));
        m.add(fb.finish());
        let stats = Dce.run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("removed"), 2);
        assert_eq!(m.inst_count(), 2);
    }

    #[test]
    fn dce_keeps_memory_ops_and_intrinsics() {
        use crate::inst::Intrinsic;
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz); // has a def, but alloc is impure — kept
        let _unused_load = fb.load(p, 0); // loads may trap — kept
        fb.intr_void(Intrinsic::TimeCheck, &[]);
        fb.free(p);
        fb.ret(None);
        m.add(fb.finish());
        let before = m.inst_count();
        Dce.run(&mut m);
        assert_eq!(m.inst_count(), before);
    }

    #[test]
    fn optimizer_composes_with_instrumentation_on_the_suite() {
        use crate::passes::PassManager;
        use crate::programs;
        for prog in programs::suite(1) {
            let mut base = Interp::new(InterpConfig::default());
            base.start(&prog.module, prog.entry, &prog.args);
            let expected = base.run_to_completion(&prog.module, &mut NullHooks);

            let mut m = prog.module.clone();
            PassManager::new().add(ConstFold).add(Dce).run(&mut m);
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, prog.entry, &prog.args);
            let got = it.run_to_completion(&m, &mut NullHooks);
            assert_eq!(got, expected, "{}", prog.name);
            // The optimizer should never make a program bigger.
            assert!(m.inst_count() <= prog.module.inst_count());
        }
    }

    #[test]
    fn select_with_constant_condition_becomes_mov() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let one = fb.const_i(1);
        let r = fb.select(one, a, b);
        fb.ret(Some(r));
        m.add(fb.finish());
        ConstFold.run(&mut m);
        let f0 = &m.funcs[0];
        assert!(f0
            .blocks
            .iter()
            .flat_map(|bb| bb.insts.iter())
            .any(|i| matches!(i, Inst::Mov(_, _))));
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[Val::I(5), Val::I(9)]);
        assert_eq!(it.run_to_completion(&m, &mut NullHooks), Some(Val::I(5)));
    }
}
