//! Benchmark-kernel builders.
//!
//! The paper's evaluations run NAS, Mantevo, PARSEC, and PBBS programs.
//! Those suites' *kernels* — streaming triads, stencils, reductions, sparse
//! gather/scatter, pointer chasing, recursive fork patterns — are what
//! stress the mechanisms under study (guards per access for CARAT, loop
//! structure for timing-call placement, recursion for virtines). This module
//! builds IR programs with exactly those access patterns so every experiment
//! crate draws workloads from one place.

use crate::func::FunctionBuilder;
use crate::inst::{BinOp, CmpOp};
use crate::module::Module;
use crate::types::{FuncId, Val};

/// A ready-to-run benchmark program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Short kernel name (used as a row label in experiment tables).
    pub name: String,
    /// The module containing the kernel and its helpers.
    pub module: Module,
    /// Entry function.
    pub entry: FuncId,
    /// Arguments to pass to the entry function.
    pub args: Vec<Val>,
}

/// STREAM-triad: `a[i] = b[i] + s * c[i]` over `n` elements, returning a
/// checksum. Dense unit-stride loads/stores — the best case for guard
/// hoisting (one range check covers the loop).
pub fn stream_triad(n: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("stream_triad", 1);
    let np = fb.param(0);
    let eight = fb.const_i(8);
    let bytes = fb.bin(BinOp::Mul, np, eight);
    let a = fb.alloc(bytes);
    let b = fb.alloc(bytes);
    let c = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);
    let s = fb.const_f(3.0);

    // init loop: b[i] = i, c[i] = 2i
    let i = fb.mov(zero);
    let init_head = fb.new_block();
    let init_body = fb.new_block();
    let triad_pre = fb.new_block();
    fb.br(init_head);
    fb.switch_to(init_head);
    let cnd = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(cnd, init_body, triad_pre);
    fb.switch_to(init_body);
    let pb = fb.gep(b, i, 8, 0);
    fb.store(pb, 0, i);
    let two_i = fb.bin(BinOp::Add, i, i);
    let pc = fb.gep(c, i, 8, 0);
    fb.store(pc, 0, two_i);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(init_head);

    // triad loop: a[i] = b[i] + s*c[i]
    fb.switch_to(triad_pre);
    fb.mov_to(i, zero);
    let triad_head = fb.new_block();
    let triad_body = fb.new_block();
    let sum_pre = fb.new_block();
    fb.br(triad_head);
    fb.switch_to(triad_head);
    let cnd2 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(cnd2, triad_body, sum_pre);
    fb.switch_to(triad_body);
    let pb2 = fb.gep(b, i, 8, 0);
    let vb = fb.load(pb2, 0);
    let pc2 = fb.gep(c, i, 8, 0);
    let vc = fb.load(pc2, 0);
    let scaled = fb.bin(BinOp::FMul, s, vc);
    let sum = fb.bin(BinOp::FAdd, vb, scaled);
    let pa = fb.gep(a, i, 8, 0);
    fb.store(pa, 0, sum);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(triad_head);

    // checksum loop
    fb.switch_to(sum_pre);
    fb.mov_to(i, zero);
    let acc = fb.const_f(0.0);
    let sum_head = fb.new_block();
    let sum_body = fb.new_block();
    let exit = fb.new_block();
    fb.br(sum_head);
    fb.switch_to(sum_head);
    let cnd3 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(cnd3, sum_body, exit);
    fb.switch_to(sum_body);
    let pa2 = fb.gep(a, i, 8, 0);
    let va = fb.load(pa2, 0);
    fb.bin_to(acc, BinOp::FAdd, acc, va);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(sum_head);
    fb.switch_to(exit);
    fb.free(a);
    fb.free(b);
    fb.free(c);
    fb.ret(Some(acc));

    let entry = m.add(fb.finish());
    Program {
        name: "stream-triad".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// 1-D Jacobi stencil: `iters` sweeps of `b[i] = (a[i-1]+a[i]+a[i+1])/3`
/// with a copy-back. The BT/SP-style iterative structure CARAT sees in NAS.
pub fn stencil1d(n: i64, iters: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("stencil1d", 2);
    let np = fb.param(0);
    let it_max = fb.param(1);
    let eight = fb.const_i(8);
    let bytes = fb.bin(BinOp::Mul, np, eight);
    let a = fb.alloc(bytes);
    let b = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);
    let third = fb.const_f(1.0 / 3.0);
    let n_minus_1 = fb.bin(BinOp::Sub, np, one);

    // init: a[i] = i
    let i = fb.mov(zero);
    let ih = fb.new_block();
    let ib = fb.new_block();
    let outer_pre = fb.new_block();
    fb.br(ih);
    fb.switch_to(ih);
    let c0 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c0, ib, outer_pre);
    fb.switch_to(ib);
    let p = fb.gep(a, i, 8, 0);
    fb.store(p, 0, i);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(ih);

    // outer iteration loop
    fb.switch_to(outer_pre);
    let t = fb.mov(zero);
    let oh = fb.new_block();
    let sweep_pre = fb.new_block();
    let done = fb.new_block();
    fb.br(oh);
    fb.switch_to(oh);
    let c1 = fb.cmp(CmpOp::Lt, t, it_max);
    fb.cond_br(c1, sweep_pre, done);

    // sweep: for i in 1..n-1: b[i] = (a[i-1]+a[i]+a[i+1]) / 3
    fb.switch_to(sweep_pre);
    fb.mov_to(i, one);
    let sh = fb.new_block();
    let sb = fb.new_block();
    let copy_pre = fb.new_block();
    fb.br(sh);
    fb.switch_to(sh);
    let c2 = fb.cmp(CmpOp::Lt, i, n_minus_1);
    fb.cond_br(c2, sb, copy_pre);
    fb.switch_to(sb);
    let pm = fb.gep(a, i, 8, -8);
    let vm = fb.load(pm, 0);
    let pz = fb.gep(a, i, 8, 0);
    let vz = fb.load(pz, 0);
    let pp = fb.gep(a, i, 8, 8);
    let vp = fb.load(pp, 0);
    let s1 = fb.bin(BinOp::FAdd, vm, vz);
    let s2 = fb.bin(BinOp::FAdd, s1, vp);
    let avg = fb.bin(BinOp::FMul, s2, third);
    let pb = fb.gep(b, i, 8, 0);
    fb.store(pb, 0, avg);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(sh);

    // copy-back: a[i] = b[i] for the interior
    fb.switch_to(copy_pre);
    fb.mov_to(i, one);
    let ch = fb.new_block();
    let cb = fb.new_block();
    let latch = fb.new_block();
    fb.br(ch);
    fb.switch_to(ch);
    let c3 = fb.cmp(CmpOp::Lt, i, n_minus_1);
    fb.cond_br(c3, cb, latch);
    fb.switch_to(cb);
    let pb2 = fb.gep(b, i, 8, 0);
    let v = fb.load(pb2, 0);
    let pa2 = fb.gep(a, i, 8, 0);
    fb.store(pa2, 0, v);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(ch);
    fb.switch_to(latch);
    fb.bin_to(t, BinOp::Add, t, one);
    fb.br(oh);

    // checksum = a[n/2]
    fb.switch_to(done);
    let two = fb.const_i(2);
    let mid = fb.bin(BinOp::Div, np, two);
    let pmid = fb.gep(a, mid, 8, 0);
    let out = fb.load(pmid, 0);
    fb.free(a);
    fb.free(b);
    fb.ret(Some(out));

    let entry = m.add(fb.finish());
    Program {
        name: "stencil-1d".into(),
        module: m,
        entry,
        args: vec![Val::I(n), Val::I(iters)],
    }
}

/// Pointer chase: build a pseudo-random ring of `n` nodes, then follow
/// `steps` links. Pointer-dense, data-dependent addresses — the worst case
/// for guard *hoisting* (every access needs its own check) and the
/// PARSEC-style irregular archetype.
pub fn pointer_chase(n: i64, steps: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("pointer_chase", 2);
    let np = fb.param(0);
    let steps_p = fb.param(1);
    let sixteen = fb.const_i(16);
    let bytes = fb.bin(BinOp::Mul, np, sixteen); // node = {next, value}
    let nodes = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    // Link node i → node (i * 7 + 1) % n  (a permutation when gcd(7, n)=1;
    // callers pass n coprime with 7), value = i.
    let seven = fb.const_i(7);
    let i = fb.mov(zero);
    let lh = fb.new_block();
    let lb = fb.new_block();
    let chase_pre = fb.new_block();
    fb.br(lh);
    fb.switch_to(lh);
    let c0 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c0, lb, chase_pre);
    fb.switch_to(lb);
    let mul = fb.bin(BinOp::Mul, i, seven);
    let plus = fb.bin(BinOp::Add, mul, one);
    let nxt_idx = fb.bin(BinOp::Rem, plus, np);
    let nxt_ptr = fb.gep(nodes, nxt_idx, 16, 0);
    let slot = fb.gep(nodes, i, 16, 0);
    fb.store(slot, 0, nxt_ptr); // node.next
    fb.store(slot, 8, i); // node.value
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(lh);

    // chase: cur = &nodes[0]; repeat steps: sum += cur->value; cur = cur->next
    fb.switch_to(chase_pre);
    let cur = fb.gep(nodes, zero, 16, 0);
    let sum = fb.mov(zero);
    let k = fb.mov(zero);
    let chh = fb.new_block();
    let chb = fb.new_block();
    let exit = fb.new_block();
    fb.br(chh);
    fb.switch_to(chh);
    let c1 = fb.cmp(CmpOp::Lt, k, steps_p);
    fb.cond_br(c1, chb, exit);
    fb.switch_to(chb);
    let v = fb.load(cur, 8);
    fb.bin_to(sum, BinOp::Add, sum, v);
    let nxt = fb.load(cur, 0);
    fb.mov_to(cur, nxt);
    fb.bin_to(k, BinOp::Add, k, one);
    fb.br(chh);
    fb.switch_to(exit);
    fb.free(nodes);
    fb.ret(Some(sum));

    let entry = m.add(fb.finish());
    Program {
        name: "pointer-chase".into(),
        module: m,
        entry,
        args: vec![Val::I(n), Val::I(steps)],
    }
}

/// Recursive Fibonacci — Fig. 5's virtine example and the canonical
/// fork-join recursion for heartbeat-style promotion.
pub fn fib(n: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("fib", 1);
    let np = fb.param(0);
    let two = fb.const_i(2);
    let c = fb.cmp(CmpOp::Lt, np, two);
    let base = fb.new_block();
    let rec = fb.new_block();
    fb.cond_br(c, base, rec);
    fb.switch_to(base);
    fb.ret(Some(np));
    fb.switch_to(rec);
    let one = fb.const_i(1);
    let n1 = fb.bin(BinOp::Sub, np, one);
    let n2 = fb.bin(BinOp::Sub, np, two);
    let self_id = FuncId(0);
    let a = fb.call(self_id, &[n1]);
    let b = fb.call(self_id, &[n2]);
    let s = fb.bin(BinOp::Add, a, b);
    fb.ret(Some(s));
    let entry = m.add(fb.finish());
    Program {
        name: "fib".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// Dense matrix–vector product `y = A·x` with an `n×n` matrix — the
/// Mantevo-miniFE-style nested-loop archetype.
pub fn matvec(n: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("matvec", 1);
    let np = fb.param(0);
    let eight = fb.const_i(8);
    let nn = fb.bin(BinOp::Mul, np, np);
    let mat_bytes = fb.bin(BinOp::Mul, nn, eight);
    let vec_bytes = fb.bin(BinOp::Mul, np, eight);
    let a = fb.alloc(mat_bytes);
    let x = fb.alloc(vec_bytes);
    let y = fb.alloc(vec_bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    // init: A[i*n+j] = i+j, x[i] = 1
    let i = fb.mov(zero);
    let ih = fb.new_block();
    let ib = fb.new_block();
    let mm_pre = fb.new_block();
    fb.br(ih);
    fb.switch_to(ih);
    let c0 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c0, ib, mm_pre);
    fb.switch_to(ib);
    let px = fb.gep(x, i, 8, 0);
    fb.store(px, 0, one);
    let j = fb.mov(zero);
    let jh = fb.new_block();
    let jb = fb.new_block();
    let ilatch = fb.new_block();
    fb.br(jh);
    fb.switch_to(jh);
    let c1 = fb.cmp(CmpOp::Lt, j, np);
    fb.cond_br(c1, jb, ilatch);
    fb.switch_to(jb);
    let row = fb.bin(BinOp::Mul, i, np);
    let idx = fb.bin(BinOp::Add, row, j);
    let pij = fb.gep(a, idx, 8, 0);
    let vij = fb.bin(BinOp::Add, i, j);
    fb.store(pij, 0, vij);
    fb.bin_to(j, BinOp::Add, j, one);
    fb.br(jh);
    fb.switch_to(ilatch);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(ih);

    // y[i] = Σ_j A[i*n+j]*x[j]
    fb.switch_to(mm_pre);
    fb.mov_to(i, zero);
    let oh = fb.new_block();
    let ob = fb.new_block();
    let sum_pre = fb.new_block();
    fb.br(oh);
    fb.switch_to(oh);
    let c2 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c2, ob, sum_pre);
    fb.switch_to(ob);
    let acc = fb.const_f(0.0);
    fb.mov_to(j, zero);
    let kh = fb.new_block();
    let kb = fb.new_block();
    let olatch = fb.new_block();
    fb.br(kh);
    fb.switch_to(kh);
    let c3 = fb.cmp(CmpOp::Lt, j, np);
    fb.cond_br(c3, kb, olatch);
    fb.switch_to(kb);
    let row2 = fb.bin(BinOp::Mul, i, np);
    let idx2 = fb.bin(BinOp::Add, row2, j);
    let pa = fb.gep(a, idx2, 8, 0);
    let va = fb.load(pa, 0);
    let pxj = fb.gep(x, j, 8, 0);
    let vx = fb.load(pxj, 0);
    let prod = fb.bin(BinOp::FMul, va, vx);
    fb.bin_to(acc, BinOp::FAdd, acc, prod);
    fb.bin_to(j, BinOp::Add, j, one);
    fb.br(kh);
    fb.switch_to(olatch);
    let py = fb.gep(y, i, 8, 0);
    fb.store(py, 0, acc);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(oh);

    // checksum = Σ y[i]
    fb.switch_to(sum_pre);
    fb.mov_to(i, zero);
    let total = fb.const_f(0.0);
    let th = fb.new_block();
    let tb = fb.new_block();
    let exit = fb.new_block();
    fb.br(th);
    fb.switch_to(th);
    let c4 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c4, tb, exit);
    fb.switch_to(tb);
    let py2 = fb.gep(y, i, 8, 0);
    let vy = fb.load(py2, 0);
    fb.bin_to(total, BinOp::FAdd, total, vy);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(th);
    fb.switch_to(exit);
    fb.free(a);
    fb.free(x);
    fb.free(y);
    fb.ret(Some(total));

    let entry = m.add(fb.finish());
    Program {
        name: "matvec".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// Histogram: scatter increments at LCG-pseudo-random buckets. Read-modify-
/// write at data-dependent addresses — the irregular scatter archetype
/// (PARSEC-style) that stresses guard elision without hoisting.
pub fn histogram(n: i64, buckets: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("histogram", 2);
    let np = fb.param(0);
    let nb = fb.param(1);
    let eight = fb.const_i(8);
    let bytes = fb.bin(BinOp::Mul, nb, eight);
    let h = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    // LCG state and constants (Numerical Recipes).
    let seed = fb.const_i(12345);
    let x = fb.mov(seed);
    let a_c = fb.const_i(1_664_525);
    let c_c = fb.const_i(1_013_904_223);
    let mask = fb.const_i(0x7fff_ffff);

    let i = fb.mov(zero);
    let hh = fb.new_block();
    let hb = fb.new_block();
    let sum_pre = fb.new_block();
    fb.br(hh);
    fb.switch_to(hh);
    let c0 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c0, hb, sum_pre);
    fb.switch_to(hb);
    let mul = fb.bin(BinOp::Mul, x, a_c);
    let add = fb.bin(BinOp::Add, mul, c_c);
    fb.bin_to(x, BinOp::And, add, mask);
    let idx = fb.bin(BinOp::Rem, x, nb);
    let p = fb.gep(h, idx, 8, 0);
    let old = fb.load(p, 0);
    let new = fb.bin(BinOp::Add, old, one);
    fb.store(p, 0, new);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(hh);

    // checksum: Σ bucket * index
    fb.switch_to(sum_pre);
    fb.mov_to(i, zero);
    let sum = fb.mov(zero);
    let sh = fb.new_block();
    let sb = fb.new_block();
    let exit = fb.new_block();
    fb.br(sh);
    fb.switch_to(sh);
    let c1 = fb.cmp(CmpOp::Lt, i, nb);
    fb.cond_br(c1, sb, exit);
    fb.switch_to(sb);
    let p2 = fb.gep(h, i, 8, 0);
    let v = fb.load(p2, 0);
    let w = fb.bin(BinOp::Mul, v, i);
    fb.bin_to(sum, BinOp::Add, sum, w);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(sh);
    fb.switch_to(exit);
    fb.free(h);
    fb.ret(Some(sum));

    let entry = m.add(fb.finish());
    Program {
        name: "histogram".into(),
        module: m,
        entry,
        args: vec![Val::I(n), Val::I(buckets)],
    }
}

/// Dot product: `Σ a[i] * b[i]` — the BLAS-1 archetype; dense, fully
/// hoistable guards.
pub fn dot(n: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("dot", 1);
    let np = fb.param(0);
    let eight = fb.const_i(8);
    let bytes = fb.bin(BinOp::Mul, np, eight);
    let a = fb.alloc(bytes);
    let b = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    // init: a[i] = i, b[i] = 2
    let two = fb.const_i(2);
    let i = fb.mov(zero);
    let ih = fb.new_block();
    let ib = fb.new_block();
    let dot_pre = fb.new_block();
    fb.br(ih);
    fb.switch_to(ih);
    let c0 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c0, ib, dot_pre);
    fb.switch_to(ib);
    let pa = fb.gep(a, i, 8, 0);
    fb.store(pa, 0, i);
    let pb = fb.gep(b, i, 8, 0);
    fb.store(pb, 0, two);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(ih);

    fb.switch_to(dot_pre);
    fb.mov_to(i, zero);
    let acc = fb.const_f(0.0);
    let dh = fb.new_block();
    let db = fb.new_block();
    let exit = fb.new_block();
    fb.br(dh);
    fb.switch_to(dh);
    let c1 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c1, db, exit);
    fb.switch_to(db);
    let pa2 = fb.gep(a, i, 8, 0);
    let va = fb.load(pa2, 0);
    let pb2 = fb.gep(b, i, 8, 0);
    let vb = fb.load(pb2, 0);
    let prod = fb.bin(BinOp::FMul, va, vb);
    fb.bin_to(acc, BinOp::FAdd, acc, prod);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(dh);
    fb.switch_to(exit);
    fb.free(a);
    fb.free(b);
    fb.ret(Some(acc));
    let entry = m.add(fb.finish());
    Program {
        name: "dot".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// Matrix transpose `B[j][i] = A[i][j]` — strided dense accesses through
/// invariant bases (the layout-transformation archetype).
pub fn transpose(n: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("transpose", 1);
    let np = fb.param(0);
    let eight = fb.const_i(8);
    let nn = fb.bin(BinOp::Mul, np, np);
    let bytes = fb.bin(BinOp::Mul, nn, eight);
    let a = fb.alloc(bytes);
    let b = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    // init: A[i*n+j] = i*n + j
    let i = fb.mov(zero);
    let oh = fb.new_block();
    let ob = fb.new_block();
    let t_pre = fb.new_block();
    fb.br(oh);
    fb.switch_to(oh);
    let c0 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c0, ob, t_pre);
    fb.switch_to(ob);
    let j = fb.mov(zero);
    let jh = fb.new_block();
    let jb = fb.new_block();
    let olatch = fb.new_block();
    fb.br(jh);
    fb.switch_to(jh);
    let c1 = fb.cmp(CmpOp::Lt, j, np);
    fb.cond_br(c1, jb, olatch);
    fb.switch_to(jb);
    let row = fb.bin(BinOp::Mul, i, np);
    let idx = fb.bin(BinOp::Add, row, j);
    let pa = fb.gep(a, idx, 8, 0);
    fb.store(pa, 0, idx);
    fb.bin_to(j, BinOp::Add, j, one);
    fb.br(jh);
    fb.switch_to(olatch);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(oh);

    // transpose: B[j*n+i] = A[i*n+j]
    fb.switch_to(t_pre);
    fb.mov_to(i, zero);
    let th = fb.new_block();
    let tb = fb.new_block();
    let sum_pre = fb.new_block();
    fb.br(th);
    fb.switch_to(th);
    let c2 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c2, tb, sum_pre);
    fb.switch_to(tb);
    fb.mov_to(j, zero);
    let kh = fb.new_block();
    let kb = fb.new_block();
    let tlatch = fb.new_block();
    fb.br(kh);
    fb.switch_to(kh);
    let c3 = fb.cmp(CmpOp::Lt, j, np);
    fb.cond_br(c3, kb, tlatch);
    fb.switch_to(kb);
    let row2 = fb.bin(BinOp::Mul, i, np);
    let src_idx = fb.bin(BinOp::Add, row2, j);
    let col = fb.bin(BinOp::Mul, j, np);
    let dst_idx = fb.bin(BinOp::Add, col, i);
    let pa2 = fb.gep(a, src_idx, 8, 0);
    let v = fb.load(pa2, 0);
    let pb2 = fb.gep(b, dst_idx, 8, 0);
    fb.store(pb2, 0, v);
    fb.bin_to(j, BinOp::Add, j, one);
    fb.br(kh);
    fb.switch_to(tlatch);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(th);

    // checksum = B[1*n+0] + B[(n-1)*n + (n-1)]
    fb.switch_to(sum_pre);
    let last = fb.bin(BinOp::Sub, nn, one);
    let plast = fb.gep(b, last, 8, 0);
    let vlast = fb.load(plast, 0);
    let pfirst = fb.gep(b, np, 8, 0);
    let vfirst = fb.load(pfirst, 0);
    let out = fb.bin(BinOp::Add, vlast, vfirst);
    fb.free(a);
    fb.free(b);
    fb.ret(Some(out));
    let entry = m.add(fb.finish());
    Program {
        name: "transpose".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// Breadth-first search over a synthetic graph: node `i` has edges to
/// `(2i+1) mod n` and `(3i+2) mod n`. Explicit frontier queue, visited and
/// depth arrays; returns the sum of BFS depths — the PBBS-style graph-
/// traversal archetype (irregular reads through invariant bases).
pub fn bfs(n: i64) -> Program {
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("bfs", 1);
    let np = fb.param(0);
    let eight = fb.const_i(8);
    let bytes = fb.bin(BinOp::Mul, np, eight);
    let visited = fb.alloc(bytes);
    let depth = fb.alloc(bytes);
    let queue = fb.alloc(bytes);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);
    let two = fb.const_i(2);
    let three = fb.const_i(3);

    // visited[0] = 1; queue[0] = 0; head = 0; tail = 1.
    let pv0 = fb.gep(visited, zero, 8, 0);
    fb.store(pv0, 0, one);
    let pq0 = fb.gep(queue, zero, 8, 0);
    fb.store(pq0, 0, zero);
    let head = fb.mov(zero);
    let tail = fb.mov(one);

    // while head < tail
    let wh = fb.new_block();
    let wb = fb.new_block();
    let sum_pre = fb.new_block();
    fb.br(wh);
    fb.switch_to(wh);
    let c0 = fb.cmp(CmpOp::Lt, head, tail);
    fb.cond_br(c0, wb, sum_pre);
    fb.switch_to(wb);
    let pqh = fb.gep(queue, head, 8, 0);
    let u = fb.load(pqh, 0);
    fb.bin_to(head, BinOp::Add, head, one);
    let pdu = fb.gep(depth, u, 8, 0);
    let du = fb.load(pdu, 0);
    let d1 = fb.bin(BinOp::Add, du, one);

    // Two edges; visit each if fresh.
    let visit = |fb: &mut FunctionBuilder, target: crate::types::Reg| {
        let pvt = fb.gep(visited, target, 8, 0);
        let seen = fb.load(pvt, 0);
        let fresh = fb.cmp(CmpOp::Eq, seen, zero);
        let do_visit = fb.new_block();
        let after = fb.new_block();
        fb.cond_br(fresh, do_visit, after);
        fb.switch_to(do_visit);
        fb.store(pvt, 0, one);
        let pdt = fb.gep(depth, target, 8, 0);
        fb.store(pdt, 0, d1);
        let pqt = fb.gep(queue, tail, 8, 0);
        fb.store(pqt, 0, target);
        fb.bin_to(tail, BinOp::Add, tail, one);
        fb.br(after);
        fb.switch_to(after);
    };
    let u2 = fb.bin(BinOp::Mul, u, two);
    let e1raw = fb.bin(BinOp::Add, u2, one);
    let e1 = fb.bin(BinOp::Rem, e1raw, np);
    visit(&mut fb, e1);
    let u3 = fb.bin(BinOp::Mul, u, three);
    let e2raw = fb.bin(BinOp::Add, u3, two);
    let e2 = fb.bin(BinOp::Rem, e2raw, np);
    visit(&mut fb, e2);
    fb.br(wh);

    // checksum: sum of depths over visited nodes.
    fb.switch_to(sum_pre);
    let i = fb.mov(zero);
    let sum = fb.mov(zero);
    let sh = fb.new_block();
    let sb = fb.new_block();
    let exit = fb.new_block();
    fb.br(sh);
    fb.switch_to(sh);
    let c1 = fb.cmp(CmpOp::Lt, i, np);
    fb.cond_br(c1, sb, exit);
    fb.switch_to(sb);
    let pvi = fb.gep(visited, i, 8, 0);
    let vi = fb.load(pvi, 0);
    let pdi = fb.gep(depth, i, 8, 0);
    let di = fb.load(pdi, 0);
    let contrib = fb.bin(BinOp::Mul, vi, di);
    fb.bin_to(sum, BinOp::Add, sum, contrib);
    fb.bin_to(i, BinOp::Add, i, one);
    fb.br(sh);
    fb.switch_to(exit);
    fb.free(visited);
    fb.free(depth);
    fb.free(queue);
    fb.ret(Some(sum));

    let entry = m.add(fb.finish());
    Program {
        name: "bfs".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// N-queens by bitboard recursion — pure register computation, deep
/// recursion, zero memory traffic (the search-tree archetype; also the
/// canonical "needs no runtime baggage" bespoke-context candidate).
pub fn nqueens(n: i64) -> Program {
    let mut m = Module::new();
    // solve(cols, d1, d2, all) -> count
    let mut fb = FunctionBuilder::new("nq_solve", 4);
    let cols = fb.param(0);
    let d1 = fb.param(1);
    let d2 = fb.param(2);
    let all = fb.param(3);
    let zero = fb.const_i(0);
    let one = fb.const_i(1);

    // if cols == all: return 1
    let full = fb.cmp(CmpOp::Eq, cols, all);
    let done = fb.new_block();
    let search = fb.new_block();
    fb.cond_br(full, done, search);
    fb.switch_to(done);
    fb.ret(Some(one));

    // free = all & !(cols | d1 | d2); iterate over set bits.
    fb.switch_to(search);
    let occ0 = fb.bin(BinOp::Or, cols, d1);
    let occ = fb.bin(BinOp::Or, occ0, d2);
    let minus1 = fb.const_i(-1);
    let notocc = fb.bin(BinOp::Xor, occ, minus1);
    let free = fb.bin(BinOp::And, all, notocc);
    let count = fb.mov(zero);
    let rest = fb.mov(free);

    let lh = fb.new_block();
    let lb = fb.new_block();
    let exit = fb.new_block();
    fb.br(lh);
    fb.switch_to(lh);
    let any = fb.cmp(CmpOp::Ne, rest, zero);
    fb.cond_br(any, lb, exit);
    fb.switch_to(lb);
    // bit = rest & -rest; rest &= rest - 1.
    let negrest = fb.bin(BinOp::Sub, zero, rest);
    let bit = fb.bin(BinOp::And, rest, negrest);
    let restm1 = fb.bin(BinOp::Sub, rest, one);
    fb.bin_to(rest, BinOp::And, rest, restm1);
    // Recurse with (cols|bit, ((d1|bit)<<1)&all, (d2|bit)>>1, all).
    let ncols = fb.bin(BinOp::Or, cols, bit);
    let nd1a = fb.bin(BinOp::Or, d1, bit);
    let nd1b = fb.bin(BinOp::Shl, nd1a, one);
    let nd1 = fb.bin(BinOp::And, nd1b, all);
    let nd2a = fb.bin(BinOp::Or, d2, bit);
    let nd2 = fb.bin(BinOp::Shr, nd2a, one);
    let sub = fb.call(FuncId(0), &[ncols, nd1, nd2, all]);
    fb.bin_to(count, BinOp::Add, count, sub);
    fb.br(lh);
    fb.switch_to(exit);
    fb.ret(Some(count));
    m.add(fb.finish());

    // entry(n): all = (1<<n)-1; solve(0,0,0,all)
    let mut fb = FunctionBuilder::new("nqueens", 1);
    let np = fb.param(0);
    let one = fb.const_i(1);
    let zero = fb.const_i(0);
    let shifted = fb.bin(BinOp::Shl, one, np);
    let all = fb.bin(BinOp::Sub, shifted, one);
    let r = fb.call(FuncId(0), &[zero, zero, zero, all]);
    fb.ret(Some(r));
    let entry = m.add(fb.finish());
    Program {
        name: "nqueens".into(),
        module: m,
        entry,
        args: vec![Val::I(n)],
    }
}

/// The full kernel suite at a given scale factor (1 = test-sized). Used by
/// the CARAT table and several property tests. The dense/irregular balance
/// loosely mirrors the NAS + Mantevo + PARSEC composition of §IV-A (mostly
/// dense kernels, one pointer-dense outlier).
pub fn suite(scale: i64) -> Vec<Program> {
    let s = scale.max(1);
    vec![
        stream_triad(64 * s),
        stencil1d(64 * s, 4 * s),
        pointer_chase(64 * s + 1, 256 * s), // n coprime with 7
        matvec(12 * s),
        histogram(256 * s, 32 * s),
        dot(96 * s),
        transpose(10 * s),
        bfs(128 * s),
        nqueens(6),
        fib(12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, InterpConfig, NullHooks};
    use crate::verify::assert_valid;

    fn run(p: &Program) -> Val {
        let mut it = Interp::new(InterpConfig::default());
        it.start(&p.module, p.entry, &p.args);
        it.run_to_completion(&p.module, &mut NullHooks)
            .expect("returns a value")
    }

    #[test]
    fn all_suite_programs_verify_and_run() {
        for p in suite(1) {
            assert_valid(&p.module);
            let _ = run(&p);
        }
    }

    #[test]
    fn stream_triad_checksum() {
        // a[i] = i + 3*2i = 7i → Σ = 7 n(n-1)/2.
        let p = stream_triad(10);
        assert_eq!(run(&p), Val::F(7.0 * 45.0));
    }

    #[test]
    fn fib_value() {
        let p = fib(10);
        assert_eq!(run(&p), Val::I(55));
    }

    #[test]
    fn pointer_chase_visits_all_nodes_in_permutation() {
        // With n coprime to 7, i → 7i+1 mod n is a permutation with a single
        // cycle covering all nodes ⇔ chase of n steps sums all values.
        let p = pointer_chase(15, 15);
        // Σ 0..14 = 105 — only if the walk really is a full cycle; for the
        // map i→7i+1 mod 15 starting at 0 the cycle may be shorter, so just
        // check determinism and boundedness.
        let v = run(&p).as_i();
        assert!(v >= 0);
        let v2 = run(&p).as_i();
        assert_eq!(v, v2);
    }

    #[test]
    fn histogram_conserves_count() {
        // Σ buckets = n increments; the weighted checksum is deterministic.
        let p = histogram(100, 8);
        let v1 = run(&p).as_i();
        let v2 = run(&p).as_i();
        assert_eq!(v1, v2);
    }

    #[test]
    fn matvec_checksum() {
        // A[i][j] = i+j, x = 1 → y[i] = Σ_j (i+j) = n*i + n(n-1)/2.
        // Σ y = n*n(n-1)/2 + n*n(n-1)/2 = n²(n-1).
        let n = 6i64;
        let p = matvec(n);
        assert_eq!(run(&p), Val::F((n * n * (n - 1)) as f64));
    }

    #[test]
    fn dot_checksum() {
        // Σ i*2 for i in 0..n = n(n-1).
        let n = 20i64;
        let p = dot(n);
        assert_eq!(run(&p), Val::F((n * (n - 1)) as f64));
    }

    #[test]
    fn transpose_checksum() {
        // B[n] = A[1] = 1 (element (0,1) lands at (1,0)); B[n²-1] = n²-1.
        let n = 8i64;
        let p = transpose(n);
        assert_eq!(run(&p), Val::I(1 + n * n - 1));
    }

    #[test]
    fn nqueens_matches_known_counts() {
        assert_eq!(run(&nqueens(4)), Val::I(2));
        assert_eq!(run(&nqueens(6)), Val::I(4));
        assert_eq!(run(&nqueens(8)), Val::I(92));
    }

    #[test]
    fn bfs_matches_a_reference_implementation() {
        // Reference BFS in Rust over the same synthetic graph.
        fn reference(n: i64) -> i64 {
            let n = n as usize;
            let mut visited = vec![false; n];
            let mut depth = vec![0i64; n];
            let mut q = std::collections::VecDeque::new();
            visited[0] = true;
            q.push_back(0usize);
            while let Some(u) = q.pop_front() {
                for v in [(2 * u + 1) % n, (3 * u + 2) % n] {
                    if !visited[v] {
                        visited[v] = true;
                        depth[v] = depth[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            (0..n).filter(|&i| visited[i]).map(|i| depth[i]).sum()
        }
        for n in [16i64, 64, 128, 333] {
            let p = bfs(n);
            assert_eq!(run(&p), Val::I(reference(n)), "bfs({n})");
        }
    }

    #[test]
    fn stencil_converges_toward_flat() {
        let p = stencil1d(32, 8);
        let v = run(&p).as_f();
        // Initial a[i]=i; smoothing keeps interior values within range.
        assert!(v > 0.0 && v < 32.0);
    }
}
