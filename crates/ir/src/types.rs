//! Core identifier and value types of the IR.

use std::fmt;

/// A virtual register. Registers are function-local mutable slots (the IR is
/// a register machine, not strict SSA — CARAT's dataflow analyses track
/// redefinitions explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block identifier, local to a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into a function's block vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A function identifier, local to a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Index into a module's function vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// A runtime value. Pointers are plain integers — the whole point of CARAT
/// (§IV-A) is that all code runs on *physical* addresses, so a pointer has
/// no hardware-enforced provenance; protection comes from compiler-inserted
/// guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// 64-bit integer (also used for pointers and booleans 0/1).
    I(i64),
    /// 64-bit float.
    F(f64),
}

impl Val {
    /// Integer value; panics on a float (an IR type error caught in debug).
    #[inline]
    pub fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            Val::F(v) => panic!("expected integer value, found float {v}"),
        }
    }

    /// Float value; integers are converted (supports mixed arithmetic in
    /// generated kernels).
    #[inline]
    pub fn as_f(self) -> f64 {
        match self {
            Val::F(v) => v,
            Val::I(v) => v as f64,
        }
    }

    /// Pointer (unsigned address) view of an integer value.
    #[inline]
    pub fn as_ptr(self) -> u64 {
        self.as_i() as u64
    }

    /// Truthiness for conditional branches: nonzero integers are true.
    #[inline]
    pub fn is_true(self) -> bool {
        match self {
            Val::I(v) => v != 0,
            Val::F(v) => v != 0.0,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I(v) => write!(f, "{v}"),
            Val::F(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Val {
        Val::I(v)
    }
}

impl From<f64> for Val {
    fn from(v: f64) -> Val {
        Val::F(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_conversions() {
        assert_eq!(Val::I(7).as_i(), 7);
        assert_eq!(Val::I(7).as_f(), 7.0);
        assert_eq!(Val::F(2.5).as_f(), 2.5);
        assert_eq!(Val::I(-1).as_ptr(), u64::MAX);
    }

    #[test]
    fn truthiness() {
        assert!(Val::I(1).is_true());
        assert!(!Val::I(0).is_true());
        assert!(Val::F(0.1).is_true());
        assert!(!Val::F(0.0).is_true());
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn float_as_int_panics() {
        let _ = Val::F(1.0).as_i();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(3).to_string(), "%3");
        assert_eq!(BlockId(2).to_string(), "bb2");
        assert_eq!(FuncId(1).to_string(), "@f1");
    }
}
