//! Functions, basic blocks, and the builder API.

use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Term};
use crate::types::{BlockId, FuncId, Reg};
use std::fmt;

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The block's instructions, in order.
    pub insts: Vec<Inst>,
    /// The terminator. `None` only transiently during construction; a
    /// verified function has a terminator in every block.
    pub term: Option<Term>,
}

impl Block {
    /// An empty, unterminated block.
    pub fn new() -> Block {
        Block {
            insts: Vec::new(),
            term: None,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: blocks, parameter count, register count.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Human-readable name.
    pub name: String,
    /// Number of parameters; parameters occupy registers `0..n_params`.
    pub n_params: usize,
    /// Total registers used (parameters included).
    pub n_regs: usize,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Marked as a virtine entry point (§IV-D): the virtine-extraction pass
    /// honours this the way the paper's `virtine` keyword (Fig. 5) does.
    pub is_virtine: bool,
}

impl Function {
    /// The entry block id.
    pub const ENTRY: BlockId = BlockId(0);

    /// Total instruction count (excluding terminators).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Count instructions matching a predicate (used by pass tests to count
    /// guards before/after optimization).
    pub fn count_insts(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    /// True if any instruction touches floating point (Fig. 4's criterion
    /// for whether a context switch must save FP state).
    pub fn touches_fp(&self) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .any(|i| i.touches_fp())
    }

    /// Allocate a fresh register (for passes that add temporaries).
    pub fn fresh_reg(&mut self) -> Reg {
        let r = Reg(self.n_regs as u32);
        self.n_regs += 1;
        r
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {}({} params) {{", self.name, self.n_params)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "bb{i}:")?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
            match &b.term {
                Some(t) => writeln!(f, "  {t:?}")?,
                None => writeln!(f, "  <unterminated>")?,
            }
        }
        write!(f, "}}")
    }
}

/// Builder for constructing a [`Function`] block by block.
///
/// ```
/// use interweave_ir::{FunctionBuilder, BinOp, Term};
///
/// // fn add1(x) { return x + 1 }
/// let mut fb = FunctionBuilder::new("add1", 1);
/// let x = fb.param(0);
/// let one = fb.const_i(1);
/// let sum = fb.bin(BinOp::Add, x, one);
/// fb.ret(Some(sum));
/// let f = fb.finish();
/// assert_eq!(f.n_params, 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start a function with `n_params` parameters; the entry block is
    /// current.
    pub fn new(name: &str, n_params: usize) -> FunctionBuilder {
        FunctionBuilder {
            f: Function {
                name: name.to_string(),
                n_params,
                n_regs: n_params,
                blocks: vec![Block::new()],
                is_virtine: false,
            },
            cur: BlockId(0),
        }
    }

    /// Mark this function as a virtine entry point (Fig. 5's `virtine`
    /// qualifier).
    pub fn virtine(&mut self) -> &mut Self {
        self.f.is_virtine = true;
        self
    }

    /// The register holding parameter `i`.
    pub fn param(&self, i: usize) -> Reg {
        assert!(i < self.f.n_params, "parameter index out of range");
        Reg(i as u32)
    }

    /// Create a new (empty) block, returning its id; does not change the
    /// current block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.f.blocks.len() as u32);
        self.f.blocks.push(Block::new());
        id
    }

    /// Switch the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(b.index() < self.f.blocks.len());
        self.cur = b;
    }

    /// The current insertion block.
    pub fn current(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, i: Inst) {
        let b = &mut self.f.blocks[self.cur.index()];
        assert!(
            b.term.is_none(),
            "appending instruction to terminated block {}",
            self.cur
        );
        b.insts.push(i);
    }

    fn def(&mut self) -> Reg {
        self.f.fresh_reg()
    }

    /// `const` integer.
    pub fn const_i(&mut self, v: i64) -> Reg {
        let d = self.def();
        self.push(Inst::ConstI(d, v));
        d
    }

    /// `const` float.
    pub fn const_f(&mut self, v: f64) -> Reg {
        let d = self.def();
        self.push(Inst::ConstF(d, v));
        d
    }

    /// Copy a register.
    pub fn mov(&mut self, s: Reg) -> Reg {
        let d = self.def();
        self.push(Inst::Mov(d, s));
        d
    }

    /// Copy into an *existing* register (loop induction updates).
    pub fn mov_to(&mut self, dst: Reg, s: Reg) {
        self.push(Inst::Mov(dst, s));
    }

    /// Binary operation.
    pub fn bin(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        let d = self.def();
        self.push(Inst::Bin(d, op, a, b));
        d
    }

    /// Binary operation into an existing register.
    pub fn bin_to(&mut self, dst: Reg, op: BinOp, a: Reg, b: Reg) {
        self.push(Inst::Bin(dst, op, a, b));
    }

    /// Comparison producing 0/1.
    pub fn cmp(&mut self, op: CmpOp, a: Reg, b: Reg) -> Reg {
        let d = self.def();
        self.push(Inst::Cmp(d, op, a, b));
        d
    }

    /// Conditional select.
    pub fn select(&mut self, c: Reg, a: Reg, b: Reg) -> Reg {
        let d = self.def();
        self.push(Inst::Select(d, c, a, b));
        d
    }

    /// Heap allocation of `size` bytes (register).
    pub fn alloc(&mut self, size: Reg) -> Reg {
        let d = self.def();
        self.push(Inst::Alloc(d, size));
        d
    }

    /// Free an allocation.
    pub fn free(&mut self, p: Reg) {
        self.push(Inst::Free(p));
    }

    /// Load a word from `[addr + off]`.
    pub fn load(&mut self, addr: Reg, off: i64) -> Reg {
        let d = self.def();
        self.push(Inst::Load(d, addr, off));
        d
    }

    /// Store a word to `[addr + off]`.
    pub fn store(&mut self, addr: Reg, off: i64, v: Reg) {
        self.push(Inst::Store(addr, off, v));
    }

    /// Pointer arithmetic: `base + idx*scale + off`.
    pub fn gep(&mut self, base: Reg, idx: Reg, scale: i64, off: i64) -> Reg {
        let d = self.def();
        self.push(Inst::Gep(d, base, idx, scale, off));
        d
    }

    /// Call a function, capturing its return value.
    pub fn call(&mut self, f: FuncId, args: &[Reg]) -> Reg {
        let d = self.def();
        self.push(Inst::Call(Some(d), f, args.to_vec()));
        d
    }

    /// Call a function, ignoring any return value.
    pub fn call_void(&mut self, f: FuncId, args: &[Reg]) {
        self.push(Inst::Call(None, f, args.to_vec()));
    }

    /// Invoke an intrinsic with a result.
    pub fn intr(&mut self, i: Intrinsic, args: &[Reg]) -> Reg {
        let d = self.def();
        self.push(Inst::Intr(Some(d), i, args.to_vec()));
        d
    }

    /// Invoke an intrinsic without a result.
    pub fn intr_void(&mut self, i: Intrinsic, args: &[Reg]) {
        self.push(Inst::Intr(None, i, args.to_vec()));
    }

    fn terminate(&mut self, t: Term) {
        let b = &mut self.f.blocks[self.cur.index()];
        assert!(b.term.is_none(), "block {} already terminated", self.cur);
        b.term = Some(t);
    }

    /// Unconditional branch.
    pub fn br(&mut self, b: BlockId) {
        self.terminate(Term::Br(b));
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, c: Reg, t: BlockId, e: BlockId) {
        self.terminate(Term::CondBr(c, t, e));
    }

    /// Return.
    pub fn ret(&mut self, v: Option<Reg>) {
        self.terminate(Term::Ret(v));
    }

    /// Finish, returning the function. Every block must be terminated.
    pub fn finish(self) -> Function {
        for (i, b) in self.f.blocks.iter().enumerate() {
            assert!(
                b.term.is_some(),
                "function {}: block bb{i} left unterminated",
                self.f.name
            );
        }
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Intrinsic;

    #[test]
    fn builds_straight_line_function() {
        let mut fb = FunctionBuilder::new("f", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        let f = fb.finish();
        assert_eq!(f.n_params, 2);
        assert_eq!(f.n_regs, 3);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 1);
    }

    #[test]
    fn builds_loop_shape() {
        // for (i = 0; i < n; i++) {}
        let mut fb = FunctionBuilder::new("loop", 1);
        let n = fb.param(0);
        let zero = fb.const_i(0);
        let i = fb.mov(zero);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(f.blocks.len(), 4);
    }

    #[test]
    fn fp_propagates_to_function() {
        let mut fb = FunctionBuilder::new("fp", 0);
        let a = fb.const_f(1.0);
        let b = fb.const_f(2.0);
        let _ = fb.bin(BinOp::FAdd, a, b);
        fb.ret(None);
        assert!(fb.finish().touches_fp());
    }

    #[test]
    fn count_insts_filters() {
        let mut fb = FunctionBuilder::new("g", 1);
        let p = fb.param(0);
        fb.intr_void(Intrinsic::CaratGuard, &[p]);
        let _ = fb.load(p, 0);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(
            f.count_insts(|i| matches!(i, Inst::Intr(_, Intrinsic::CaratGuard, _))),
            1
        );
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn finish_rejects_unterminated_blocks() {
        let mut fb = FunctionBuilder::new("bad", 0);
        let _ = fb.new_block(); // never terminated
        fb.ret(None);
        let _ = fb.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut fb = FunctionBuilder::new("bad2", 0);
        fb.ret(None);
        fb.ret(None);
    }
}
