//! Control-flow graph: successors, predecessors, reverse postorder.

use crate::func::Function;
use crate::types::BlockId;

/// The control-flow graph of one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor lists, indexed by block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessor lists, indexed by block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// absent.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable blocks.
    pub rpo_pos: Vec<usize>,
}

impl Cfg {
    /// Build the CFG for `f`.
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            let term = b
                .term
                .as_ref()
                .unwrap_or_else(|| panic!("bb{i} unterminated; verify the function first"));
            for s in term.succs() {
                succs[i].push(s);
                preds[s.index()].push(BlockId(i as u32));
            }
        }

        // Iterative DFS postorder from the entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut si)) = stack.last_mut() {
            if *si < succs[b].len() {
                let s = succs[b][*si].index();
                *si += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(BlockId(b as u32));
                stack.pop();
            }
        }
        post.reverse();
        let rpo = post;
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
        }
    }

    /// True if the block is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks (cannot happen for verified IR).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::inst::CmpOp;

    /// Build a diamond: entry → (then | else) → join.
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", 1);
        let p = fb.param(0);
        let z = fb.const_i(0);
        let c = fb.cmp(CmpOp::Gt, p, z);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[3].len(), 2);
        assert_eq!(cfg.preds[0].len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_joins_last() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(*cfg.rpo.last().unwrap(), BlockId(3));
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut fb = FunctionBuilder::new("u", 0);
        let dead = fb.new_block();
        fb.ret(None);
        fb.switch_to(dead);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.rpo.len(), 1);
        assert!(cfg.reachable(BlockId(0)));
        assert!(!cfg.reachable(dead));
    }
}
