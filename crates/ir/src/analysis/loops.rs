//! Natural-loop detection.
//!
//! Loops matter twice in the paper: CARAT hoists guards out of them (§IV-A)
//! and compiler-based timing places time checks in them at a rate derived
//! from estimated iteration cost (§IV-C).

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::Dominators;
use crate::types::BlockId;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop body, header included.
    pub body: Vec<BlockId>,
    /// The unique out-of-loop predecessor of the header, if there is exactly
    /// one — the *preheader*, where hoisted guards land.
    pub preheader: Option<BlockId>,
}

impl Loop {
    /// True if `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// All natural loops of a function. Loops sharing a header are merged.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// The loops, in discovery order (outer loops may appear after inner).
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Find natural loops: for every edge `t → h` where `h` dominates `t`,
    /// collect the blocks that reach `t` without passing through `h`.
    pub fn find(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        use std::collections::BTreeMap;
        let mut bodies: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();

        for &b in &cfg.rpo {
            for &s in &cfg.succs[b.index()] {
                if dom.dominates(s, b) {
                    // Back edge b → s; s is a header.
                    let body = bodies.entry(s).or_insert_with(|| vec![s]);
                    // Walk predecessors backward from the latch.
                    let mut stack = vec![b];
                    while let Some(x) = stack.pop() {
                        if body.contains(&x) {
                            continue;
                        }
                        body.push(x);
                        for &p in &cfg.preds[x.index()] {
                            if cfg.reachable(p) {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }

        let loops = bodies
            .into_iter()
            .map(|(header, mut body)| {
                body.sort_unstable();
                body.dedup();
                // Preheader: unique predecessor of the header outside the
                // loop.
                let outside: Vec<BlockId> = cfg.preds[header.index()]
                    .iter()
                    .copied()
                    .filter(|p| !body.contains(p))
                    .collect();
                let preheader = if outside.len() == 1 {
                    Some(outside[0])
                } else {
                    None
                };
                Loop {
                    header,
                    body,
                    preheader,
                }
            })
            .collect();
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any (smallest body wins).
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.body.len())
    }

    /// Loop depth of a block (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> usize {
        self.loops.iter().filter(|l| l.contains(b)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Function, FunctionBuilder};
    use crate::inst::{BinOp, CmpOp};

    /// entry(bb0) → head(bb1); head → body(bb2)|exit(bb3); body → head.
    fn simple_loop() -> Function {
        let mut fb = FunctionBuilder::new("l", 1);
        let n = fb.param(0);
        let z = fb.const_i(0);
        let i = fb.mov(z);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    /// Nested: outer head bb1, inner head bb3.
    fn nested_loops() -> Function {
        let mut fb = FunctionBuilder::new("n", 1);
        let n = fb.param(0);
        let z = fb.const_i(0);
        let i = fb.mov(z);
        let ohead = fb.new_block(); // bb1
        let obody = fb.new_block(); // bb2 (inner preheader)
        let ihead = fb.new_block(); // bb3
        let ibody = fb.new_block(); // bb4
        let olatch = fb.new_block(); // bb5
        let exit = fb.new_block(); // bb6
        fb.br(ohead);

        fb.switch_to(ohead);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, obody, exit);

        fb.switch_to(obody);
        let j = fb.mov(z);
        fb.br(ihead);

        fb.switch_to(ihead);
        let c2 = fb.cmp(CmpOp::Lt, j, n);
        fb.cond_br(c2, ibody, olatch);

        fb.switch_to(ibody);
        let one = fb.const_i(1);
        fb.bin_to(j, BinOp::Add, j, one);
        fb.br(ihead);

        fb.switch_to(olatch);
        let one2 = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one2);
        fb.br(ohead);

        fb.switch_to(exit);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn finds_simple_loop_with_preheader() {
        let f = simple_loop();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::find(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(3)));
        assert_eq!(l.preheader, Some(BlockId(0)));
    }

    #[test]
    fn nested_loops_have_correct_depths() {
        let f = nested_loops();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::find(&cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        // Inner body is depth 2; outer latch depth 1; exit depth 0.
        assert_eq!(forest.depth(BlockId(4)), 2);
        assert_eq!(forest.depth(BlockId(5)), 1);
        assert_eq!(forest.depth(BlockId(6)), 0);
    }

    #[test]
    fn innermost_selection() {
        let f = nested_loops();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::find(&cfg, &dom);
        let inner = forest.innermost_containing(BlockId(4)).unwrap();
        assert_eq!(inner.header, BlockId(3));
        // The inner loop's preheader is the outer body block.
        assert_eq!(inner.preheader, Some(BlockId(2)));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut fb = FunctionBuilder::new("s", 0);
        fb.ret(None);
        let f = fb.finish();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        assert!(LoopForest::find(&cfg, &dom).loops.is_empty());
    }
}
