//! Program analyses.
//!
//! These are the "modern code analysis techniques" §IV-A credits with making
//! guard aggregation and hoisting possible, and §IV-C credits with placing
//! timing calls "so that they occur dynamically at some desired rate
//! regardless of the code path taken":
//!
//! - [`mod@cfg`]: predecessors/successors and reverse postorder.
//! - [`dom`]: dominator tree (Cooper–Harvey–Kennedy).
//! - [`loops`]: natural-loop detection with preheader identification.
//! - [`defs`]: register definition counting (single-assignment discovery for
//!   the mutable-register IR).

pub mod cfg;
pub mod defs;
pub mod dom;
pub mod loops;

pub use cfg::Cfg;
pub use defs::DefInfo;
pub use dom::Dominators;
pub use loops::{Loop, LoopForest};
