//! Register-definition analysis.
//!
//! The IR uses mutable registers rather than strict SSA, so passes that
//! reason "this register still holds the same pointer" (guard elision,
//! guard hoisting) must know where registers are (re)defined. [`DefInfo`]
//! records, per register, every definition site; registers with exactly one
//! static definition behave like SSA names.

use crate::func::Function;
use crate::types::{BlockId, Reg};

/// A definition site: block and instruction index within the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Defining block.
    pub block: BlockId,
    /// Instruction index within the block.
    pub inst: usize,
}

/// Definition sites for every register of a function.
#[derive(Debug, Clone)]
pub struct DefInfo {
    /// `sites[r]` lists every definition of register `r`. Parameters have an
    /// implicit definition at function entry which is *not* listed.
    pub sites: Vec<Vec<DefSite>>,
    n_params: usize,
}

impl DefInfo {
    /// Compute definition sites for `f`.
    pub fn compute(f: &Function) -> DefInfo {
        let mut sites = vec![Vec::new(); f.n_regs];
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if let Some(d) = inst.def() {
                    sites[d.0 as usize].push(DefSite {
                        block: BlockId(bi as u32),
                        inst: ii,
                    });
                }
            }
        }
        DefInfo {
            sites,
            n_params: f.n_params,
        }
    }

    /// True when `r` has exactly one static definition (counting the
    /// implicit parameter definition). Such registers hold one value for the
    /// whole execution, so a dominating guard of `r` covers every later use.
    pub fn is_single_def(&self, r: Reg) -> bool {
        let explicit = self.sites[r.0 as usize].len();
        if (r.0 as usize) < self.n_params {
            explicit == 0
        } else {
            explicit == 1
        }
    }

    /// True when `r` is never redefined inside any block of `blocks`
    /// (loop-invariance check for hoisting).
    pub fn invariant_in(&self, r: Reg, blocks: &[BlockId]) -> bool {
        self.sites[r.0 as usize]
            .iter()
            .all(|s| !blocks.contains(&s.block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::inst::{BinOp, CmpOp};

    #[test]
    fn single_def_and_multi_def() {
        let mut fb = FunctionBuilder::new("f", 1);
        let p = fb.param(0);
        let z = fb.const_i(0);
        let i = fb.mov(z); // def 1 of i
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one); // def 2 of i
        fb.ret(None);
        let f = fb.finish();
        let info = DefInfo::compute(&f);
        assert!(info.is_single_def(p)); // param, never redefined
        assert!(info.is_single_def(z));
        assert!(!info.is_single_def(i));
    }

    #[test]
    fn redefined_param_is_not_single_def() {
        let mut fb = FunctionBuilder::new("f", 1);
        let p = fb.param(0);
        let z = fb.const_i(0);
        fb.mov_to(p, z);
        fb.ret(None);
        let info = DefInfo::compute(&fb.finish());
        assert!(!info.is_single_def(p));
    }

    #[test]
    fn invariance_wrt_blocks() {
        // i is redefined in the loop body (bb2); p never is.
        let mut fb = FunctionBuilder::new("f", 1);
        let p = fb.param(0);
        let z = fb.const_i(0);
        let i = fb.mov(z);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, p);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();
        let info = DefInfo::compute(&f);
        let loop_blocks = [head, body];
        assert!(info.invariant_in(p, &loop_blocks));
        assert!(!info.invariant_in(i, &loop_blocks));
    }
}
