//! Dominator analysis (Cooper–Harvey–Kennedy "a simple, fast dominance
//! algorithm").
//!
//! Dominance is what lets CARAT elide a guard: a check of pointer `p` is
//! redundant when another check of `p` *dominates* it with no intervening
//! redefinition (§IV-A's "aggregate and hoist protection and tracking
//! code").

use crate::analysis::cfg::Cfg;
use crate::types::BlockId;

/// Dominator tree for one function.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators from a CFG.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if n == 0 {
            return Dominators { idom: vec![] };
        }
        idom[0] = Some(0);

        // Intersect in RPO-position space.
        let intersect = |idom: &[Option<usize>], pos: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while pos[a] > pos[b] {
                    a = idom[a].expect("processed block must have idom");
                }
                while pos[b] > pos[a] {
                    b = idom[b].expect("processed block must have idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                let bi = b.index();
                let mut new_idom: Option<usize> = None;
                for &p in &cfg.preds[bi] {
                    let pi = p.index();
                    if idom[pi].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => pi,
                        Some(cur) => intersect(&idom, &cfg.rpo_pos, cur, pi),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bi] != Some(ni) {
                        idom[bi] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        Dominators {
            idom: idom
                .into_iter()
                .map(|o| o.map(|i| BlockId(i as u32)))
                .collect(),
        }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Immediate dominator of `b` (`None` at the entry or unreachable).
    pub fn idom_of(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Function, FunctionBuilder};
    use crate::inst::CmpOp;

    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", 1);
        let p = fb.param(0);
        let z = fb.const_i(0);
        let c = fb.cmp(CmpOp::Gt, p, z);
        let t = fb.new_block();
        let e = fb.new_block();
        let j = fb.new_block();
        fb.cond_br(c, t, e);
        fb.switch_to(t);
        fb.br(j);
        fb.switch_to(e);
        fb.br(j);
        fb.switch_to(j);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn diamond_dominance() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        let (entry, t, e, j) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert!(dom.dominates(entry, j));
        assert!(dom.dominates(entry, t));
        assert!(!dom.dominates(t, j)); // join reachable around `t`
        assert!(!dom.dominates(e, j));
        assert_eq!(dom.idom_of(j), Some(entry));
        assert_eq!(dom.idom_of(entry), None);
    }

    #[test]
    fn loop_header_dominates_body() {
        // entry → head; head → body|exit; body → head.
        let mut fb = FunctionBuilder::new("l", 1);
        let n = fb.param(0);
        let z = fb.const_i(0);
        let i = fb.mov(z);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, exit);
        fb.switch_to(body);
        let one = fb.const_i(1);
        fb.bin_to(i, crate::inst::BinOp::Add, i, one);
        fb.br(head);
        fb.switch_to(exit);
        fb.ret(None);
        let f = fb.finish();

        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(head, body));
        assert!(dom.dominates(head, exit));
        assert!(!dom.dominates(body, exit));
    }

    #[test]
    fn reflexive_dominance() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = Dominators::compute(&cfg);
        for b in 0..4 {
            assert!(dom.dominates(BlockId(b), BlockId(b)));
        }
    }
}
