//! Structural IR validation.
//!
//! Every interweaving pass in the workspace is followed by `verify` in its
//! tests: a transformation that produces malformed IR must fail loudly, not
//! miscompute an overhead number.

use crate::inst::{Inst, Term};
use crate::module::Module;
use crate::types::FuncId;

/// A structural error found in a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the error occurred.
    pub func: String,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.func, self.msg)
    }
}

/// Verify a whole module; returns all errors found.
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for (fi, f) in m.funcs.iter().enumerate() {
        let err = |msg: String| VerifyError {
            func: f.name.clone(),
            msg,
        };
        if f.blocks.is_empty() {
            errs.push(err("function has no blocks".into()));
            continue;
        }
        if f.n_params > f.n_regs {
            errs.push(err(format!(
                "n_params {} exceeds n_regs {}",
                f.n_params, f.n_regs
            )));
        }
        let nb = f.blocks.len() as u32;
        let nr = f.n_regs as u32;
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut uses = Vec::new();
            for inst in &b.insts {
                if let Some(d) = inst.def() {
                    if d.0 >= nr {
                        errs.push(err(format!("bb{bi}: def of out-of-range {d}")));
                    }
                }
                uses.clear();
                inst.uses(&mut uses);
                for u in &uses {
                    if u.0 >= nr {
                        errs.push(err(format!("bb{bi}: use of out-of-range {u}")));
                    }
                }
                if let Inst::Call(_, g, _) = inst {
                    if g.index() >= m.funcs.len() {
                        errs.push(err(format!("bb{bi}: call to unknown {g}")));
                    }
                }
            }
            match &b.term {
                None => errs.push(err(format!("bb{bi}: missing terminator"))),
                Some(t) => {
                    for s in t.succs() {
                        if s.0 >= nb {
                            errs.push(err(format!("bb{bi}: branch to unknown {s}")));
                        }
                    }
                    if let Term::CondBr(c, _, _) = t {
                        if c.0 >= nr {
                            errs.push(err(format!("bb{bi}: branch on out-of-range {c}")));
                        }
                    }
                    if let Term::Ret(Some(v)) = t {
                        if v.0 >= nr {
                            errs.push(err(format!("bb{bi}: return of out-of-range {v}")));
                        }
                    }
                }
            }
        }
        // fi is only used to make the unused-variable lint happy about the
        // enumerate; function identity is reported by name.
        let _ = FuncId(fi as u32);
    }
    errs
}

/// Panic with a readable report if the module is malformed. Pass tests call
/// this after every transformation.
pub fn assert_valid(m: &Module) {
    let errs = verify_module(m);
    assert!(
        errs.is_empty(),
        "IR verification failed:\n{}",
        errs.iter()
            .map(|e| format!("  {e}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Function, FunctionBuilder};
    use crate::inst::{BinOp, Inst, Term};
    use crate::types::{BlockId, Reg};

    #[test]
    fn valid_function_passes() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("ok", 1);
        let p = fb.param(0);
        let c = fb.const_i(1);
        let s = fb.bin(BinOp::Add, p, c);
        fb.ret(Some(s));
        m.add(fb.finish());
        assert!(verify_module(&m).is_empty());
    }

    #[test]
    fn detects_out_of_range_register() {
        let mut m = Module::new();
        m.add(Function {
            name: "bad".into(),
            n_params: 0,
            n_regs: 1,
            blocks: vec![Block {
                insts: vec![Inst::Mov(Reg(0), Reg(99))],
                term: Some(Term::Ret(None)),
            }],
            is_virtine: false,
        });
        let errs = verify_module(&m);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].msg.contains("out-of-range"));
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut m = Module::new();
        m.add(Function {
            name: "bad".into(),
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block {
                insts: vec![],
                term: Some(Term::Br(BlockId(5))),
            }],
            is_virtine: false,
        });
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("unknown bb5")));
    }

    #[test]
    fn detects_missing_terminator() {
        let mut m = Module::new();
        m.add(Function {
            name: "bad".into(),
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block {
                insts: vec![],
                term: None,
            }],
            is_virtine: false,
        });
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("missing terminator")));
    }

    #[test]
    fn detects_unknown_callee() {
        let mut m = Module::new();
        m.add(Function {
            name: "bad".into(),
            n_params: 0,
            n_regs: 0,
            blocks: vec![Block {
                insts: vec![Inst::Call(None, crate::types::FuncId(9), vec![])],
                term: Some(Term::Ret(None)),
            }],
            is_virtine: false,
        });
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.msg.contains("unknown @f9")));
    }
}
