//! Leaf-function inlining.
//!
//! Interwoven code crosses layers through tiny runtime helpers; inlining
//! them is how "the compiler blends the code of the application and the
//! code of Nautilus at a low level, including below the level of individual
//! functions" (Fig. 1's ④). The pass inlines *leaf* callees (no calls of
//! their own) under a size threshold:
//!
//! - the call's block is split at the call site;
//! - the callee's blocks are appended with registers and block ids
//!   remapped;
//! - parameters become moves from the argument registers;
//! - every `ret` becomes a move to the call's destination plus a branch to
//!   the continuation block.
//!
//! One call site is transformed per iteration until fixpoint, so chains of
//! calls to leaves all disappear.

use crate::func::Block;
use crate::inst::{Inst, Term};
use crate::passes::{Pass, PassStats};
use crate::types::{BlockId, FuncId, Reg};
use crate::Module;

/// The inlining pass.
#[derive(Debug, Clone)]
pub struct Inline {
    /// Largest callee (in instructions) worth inlining.
    pub max_callee_insts: usize,
}

impl Default for Inline {
    fn default() -> Inline {
        Inline {
            max_callee_insts: 24,
        }
    }
}

fn is_leaf(m: &Module, f: FuncId) -> bool {
    m.func(f)
        .blocks
        .iter()
        .all(|b| !b.insts.iter().any(|i| matches!(i, Inst::Call(_, _, _))))
}

/// Find the first inlinable call site in `f`: `(block, index, callee)`.
fn find_site(m: &Module, fi: usize, max: usize) -> Option<(usize, usize, FuncId)> {
    let f = &m.funcs[fi];
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Inst::Call(_, g, _) = inst {
                if g.index() != fi && is_leaf(m, *g) && m.func(*g).inst_count() <= max {
                    return Some((bi, ii, *g));
                }
            }
        }
    }
    None
}

fn remap_reg(r: Reg, offset: u32) -> Reg {
    Reg(r.0 + offset)
}

impl Pass for Inline {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run(&mut self, m: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for fi in 0..m.funcs.len() {
            // Fixpoint per function with a generous fuse.
            for _round in 0..64 {
                let Some((bi, ii, callee_id)) = find_site(m, fi, self.max_callee_insts) else {
                    break;
                };
                let callee = m.func(callee_id).clone();
                let f = &mut m.funcs[fi];
                let reg_off = f.n_regs as u32;
                let blk_off = f.blocks.len() as u32;
                f.n_regs += callee.n_regs;

                // Split the calling block.
                let (dst, args) = match &f.blocks[bi].insts[ii] {
                    Inst::Call(d, _, a) => (*d, a.clone()),
                    _ => unreachable!("site located above"),
                };
                let tail: Vec<Inst> = f.blocks[bi].insts.split_off(ii + 1);
                f.blocks[bi].insts.pop(); // drop the call itself
                let cont_id = BlockId(blk_off); // continuation block first
                let cont = Block {
                    insts: tail,
                    term: f.blocks[bi].term.take(),
                };
                f.blocks.push(cont);

                // Append remapped callee blocks after the continuation.
                let entry_id = BlockId(blk_off + 1);
                for (cbi, cb) in callee.blocks.iter().enumerate() {
                    let mut insts: Vec<Inst> = Vec::with_capacity(cb.insts.len() + 2);
                    // Parameter moves at the entry block.
                    if cbi == 0 {
                        for (k, &arg) in args.iter().enumerate() {
                            insts.push(Inst::Mov(Reg(reg_off + k as u32), arg));
                        }
                    }
                    for inst in &cb.insts {
                        insts.push(remap_inst(inst, reg_off));
                    }
                    let term = match cb.term.as_ref().expect("verified callee") {
                        Term::Br(t) => Term::Br(BlockId(t.0 + blk_off + 1)),
                        Term::CondBr(c, t, e) => Term::CondBr(
                            remap_reg(*c, reg_off),
                            BlockId(t.0 + blk_off + 1),
                            BlockId(e.0 + blk_off + 1),
                        ),
                        Term::Ret(v) => {
                            if let (Some(d), Some(v)) = (dst, v) {
                                insts.push(Inst::Mov(d, remap_reg(*v, reg_off)));
                            }
                            Term::Br(cont_id)
                        }
                    };
                    f.blocks.push(Block {
                        insts,
                        term: Some(term),
                    });
                }

                // The calling block now jumps into the inlined body.
                f.blocks[bi].term = Some(Term::Br(entry_id));
                stats.bump("inlined", 1);
            }
        }
        stats
    }
}

fn remap_inst(i: &Inst, off: u32) -> Inst {
    let r = |x: Reg| remap_reg(x, off);
    match i {
        Inst::ConstI(d, v) => Inst::ConstI(r(*d), *v),
        Inst::ConstF(d, v) => Inst::ConstF(r(*d), *v),
        Inst::Mov(d, s) => Inst::Mov(r(*d), r(*s)),
        Inst::Bin(d, op, a, b) => Inst::Bin(r(*d), *op, r(*a), r(*b)),
        Inst::Cmp(d, op, a, b) => Inst::Cmp(r(*d), *op, r(*a), r(*b)),
        Inst::Select(d, c, a, b) => Inst::Select(r(*d), r(*c), r(*a), r(*b)),
        Inst::Alloc(d, s) => Inst::Alloc(r(*d), r(*s)),
        Inst::Free(p) => Inst::Free(r(*p)),
        Inst::Load(d, a, o) => Inst::Load(r(*d), r(*a), *o),
        Inst::Store(a, o, v) => Inst::Store(r(*a), *o, r(*v)),
        Inst::Gep(d, b, i2, s, o) => Inst::Gep(r(*d), r(*b), r(*i2), *s, *o),
        Inst::Call(d, g, args) => Inst::Call(d.map(r), *g, args.iter().map(|&a| r(a)).collect()),
        Inst::Intr(d, w, args) => Inst::Intr(d.map(r), *w, args.iter().map(|&a| r(a)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::interp::{Interp, InterpConfig, NullHooks};
    use crate::types::Val;
    use crate::verify::assert_valid;
    use crate::{BinOp, CmpOp};

    /// helper(x, y) = x*y + 1; caller(a) = helper(a, a+2) - helper(a, 3).
    fn module_with_helper() -> Module {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("helper", 2);
        let x = fb.param(0);
        let y = fb.param(1);
        let p = fb.bin(BinOp::Mul, x, y);
        let one = fb.const_i(1);
        let r = fb.bin(BinOp::Add, p, one);
        fb.ret(Some(r));
        let helper = m.add(fb.finish());

        let mut fb = FunctionBuilder::new("caller", 1);
        let a = fb.param(0);
        let two = fb.const_i(2);
        let a2 = fb.bin(BinOp::Add, a, two);
        let c1 = fb.call(helper, &[a, a2]);
        let three = fb.const_i(3);
        let c2 = fb.call(helper, &[a, three]);
        let d = fb.bin(BinOp::Sub, c1, c2);
        fb.ret(Some(d));
        m.add(fb.finish());
        m
    }

    fn run(m: &Module, f: &str, args: &[Val]) -> Option<Val> {
        let id = m.by_name(f).expect("function");
        let mut it = Interp::new(InterpConfig::default());
        it.start(m, id, args);
        it.run_to_completion(m, &mut NullHooks)
    }

    #[test]
    fn inlines_both_call_sites_and_preserves_semantics() {
        let mut m = module_with_helper();
        let expected = run(&m, "caller", &[Val::I(7)]);
        let stats = Inline::default().run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("inlined"), 2);
        // No calls remain in the caller.
        let caller = m.func(m.by_name("caller").unwrap());
        assert_eq!(caller.count_insts(|i| matches!(i, Inst::Call(_, _, _))), 0);
        assert_eq!(run(&m, "caller", &[Val::I(7)]), expected);
        // helper(7,9)-helper(7,3) = 64-22 = 42.
        assert_eq!(expected, Some(Val::I(42)));
    }

    #[test]
    fn recursion_is_never_inlined() {
        let p = crate::programs::fib(10);
        let mut m = p.module.clone();
        let stats = Inline::default().run(&mut m);
        assert_eq!(stats.get("inlined"), 0);
        assert_eq!(run(&m, "fib", &[Val::I(10)]), Some(Val::I(55)));
    }

    #[test]
    fn size_threshold_respected() {
        let mut m = module_with_helper();
        let stats = Inline {
            max_callee_insts: 1, // helper has 3 insts
        }
        .run(&mut m);
        assert_eq!(stats.get("inlined"), 0);
    }

    #[test]
    fn branchy_callees_inline_correctly() {
        // abs(x) with a diamond, called twice.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("abs", 1);
        let x = fb.param(0);
        let zero = fb.const_i(0);
        let c = fb.cmp(CmpOp::Lt, x, zero);
        let neg = fb.new_block();
        let pos = fb.new_block();
        fb.cond_br(c, neg, pos);
        fb.switch_to(neg);
        let nx = fb.bin(BinOp::Sub, zero, x);
        fb.ret(Some(nx));
        fb.switch_to(pos);
        fb.ret(Some(x));
        let abs = m.add(fb.finish());

        let mut fb = FunctionBuilder::new("caller", 2);
        let a = fb.param(0);
        let b = fb.param(1);
        let aa = fb.call(abs, &[a]);
        let ab = fb.call(abs, &[b]);
        let s = fb.bin(BinOp::Add, aa, ab);
        fb.ret(Some(s));
        m.add(fb.finish());

        let expected = run(&m, "caller", &[Val::I(-5), Val::I(9)]);
        let stats = Inline::default().run(&mut m);
        assert_valid(&m);
        assert_eq!(stats.get("inlined"), 2);
        assert_eq!(run(&m, "caller", &[Val::I(-5), Val::I(9)]), expected);
        assert_eq!(expected, Some(Val::I(14)));
    }

    #[test]
    fn inlining_composes_with_the_whole_suite() {
        for p in crate::programs::suite(1) {
            let expected = {
                let mut it = Interp::new(InterpConfig::default());
                it.start(&p.module, p.entry, &p.args);
                it.run_to_completion(&p.module, &mut NullHooks)
            };
            let mut m = p.module.clone();
            Inline::default().run(&mut m);
            assert_valid(&m);
            let mut it = Interp::new(InterpConfig::default());
            it.start(&m, p.entry, &p.args);
            let got = it.run_to_completion(&m, &mut NullHooks);
            assert_eq!(got, expected, "{}", p.name);
        }
    }

    #[test]
    fn void_callees_and_ignored_returns_work() {
        // side(x): store x into a global-ish buffer passed by pointer.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("side", 2);
        let ptr = fb.param(0);
        let v = fb.param(1);
        fb.store(ptr, 0, v);
        fb.ret(None);
        let side = m.add(fb.finish());

        let mut fb = FunctionBuilder::new("caller", 0);
        let sz = fb.const_i(8);
        let buf = fb.alloc(sz);
        let seven = fb.const_i(7);
        fb.call_void(side, &[buf, seven]);
        let back = fb.load(buf, 0);
        fb.ret(Some(back));
        m.add(fb.finish());

        Inline::default().run(&mut m);
        assert_valid(&m);
        assert_eq!(run(&m, "caller", &[]), Some(Val::I(7)));
    }
}
