//! Instructions, terminators, and interweaving intrinsics.

use crate::types::{BlockId, FuncId, Reg};
use std::fmt;

/// Integer/float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (trap on zero).
    Div,
    /// Integer remainder (trap on zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
}

impl BinOp {
    /// True for the floating-point operators — used by the fiber study
    /// (Fig. 4) to decide whether a function touches FP state.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }
}

/// Comparison operators (integer compare; result is 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

/// Interweaving intrinsics: the points where compiler-transformed code calls
/// into a runtime/kernel layer. Each corresponds to one of the paper's
/// examples; their behaviour is supplied by the executing environment via
/// [`crate::interp::RuntimeHooks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// CARAT (§IV-A): check that a single-word access through `args[0]` is
    /// permitted. Inserted by the guard-injection pass; elided/hoisted by
    /// the optimization passes.
    CaratGuard,
    /// CARAT: check an access range `[args[0], args[0]+args[1])` — the
    /// hoisted form covering a whole loop's accesses with one check.
    CaratGuardRange,
    /// CARAT: record a new allocation `(ptr=args[0], size=args[1])` in the
    /// tracking runtime.
    CaratTrackAlloc,
    /// CARAT: record a free of `args[0]`.
    CaratTrackFree,
    /// CARAT: record that a pointer value `args[0]` has been stored to
    /// memory location `args[1]` (an *escape*) so defragmentation can patch
    /// it when the allocation moves.
    CaratTrackEscape,
    /// Compiler-based timing (§IV-C): a time check that may yield to the
    /// timer framework. Injected so that it executes at a target cycle rate
    /// on every path.
    TimeCheck,
    /// Blending (§V-C): constant-time poll of blended device driver state.
    /// Injected by the same placement machinery as `TimeCheck`.
    PollDevices,
    /// Cooperative yield (baseline fibers without compiler timing).
    Yield,
    /// Heartbeat promotion hook (§IV-B): the runtime may promote latent
    /// parallelism at this point.
    Promote,
    /// Read the cycle counter (`rdtsc`-like) into the destination.
    ReadTimer,
    /// Emit `args[0]` to the trace buffer (testing/debugging).
    Trace,
}

impl Intrinsic {
    /// True for the intrinsics injected by interweaving passes (as opposed
    /// to ones a source program may contain organically).
    pub fn is_injected(self) -> bool {
        matches!(
            self,
            Intrinsic::CaratGuard
                | Intrinsic::CaratGuardRange
                | Intrinsic::CaratTrackAlloc
                | Intrinsic::CaratTrackFree
                | Intrinsic::CaratTrackEscape
                | Intrinsic::TimeCheck
                | Intrinsic::PollDevices
        )
    }
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = imm`
    ConstI(Reg, i64),
    /// `dst = imm` (float)
    ConstF(Reg, f64),
    /// `dst = src`
    Mov(Reg, Reg),
    /// `dst = op(a, b)`
    Bin(Reg, BinOp, Reg, Reg),
    /// `dst = cmp(a, b)` producing 0/1
    Cmp(Reg, CmpOp, Reg, Reg),
    /// `dst = cond ? a : b`
    Select(Reg, Reg, Reg, Reg),
    /// `dst = alloc(size_reg)` — heap allocation returning an address.
    Alloc(Reg, Reg),
    /// `free(ptr_reg)`
    Free(Reg),
    /// `dst = load(addr + offset)` — one 8-byte word.
    Load(Reg, Reg, i64),
    /// `store(addr + offset, val)` — one 8-byte word.
    Store(Reg, i64, Reg),
    /// `dst = base + index * scale + offset` — pointer arithmetic that the
    /// CARAT analyses recognize as derived from `base`.
    Gep(Reg, Reg, Reg, i64, i64),
    /// `dst? = call f(args...)`
    Call(Option<Reg>, FuncId, Vec<Reg>),
    /// `dst? = intrinsic(args...)`
    Intr(Option<Reg>, Intrinsic, Vec<Reg>),
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::ConstI(d, _)
            | Inst::ConstF(d, _)
            | Inst::Mov(d, _)
            | Inst::Bin(d, _, _, _)
            | Inst::Cmp(d, _, _, _)
            | Inst::Select(d, _, _, _)
            | Inst::Alloc(d, _)
            | Inst::Load(d, _, _)
            | Inst::Gep(d, _, _, _, _) => Some(d),
            Inst::Call(d, _, _) | Inst::Intr(d, _, _) => d,
            Inst::Free(_) | Inst::Store(_, _, _) => None,
        }
    }

    /// Registers this instruction reads, appended to `out`.
    pub fn uses(&self, out: &mut Vec<Reg>) {
        match self {
            Inst::ConstI(_, _) | Inst::ConstF(_, _) => {}
            Inst::Mov(_, s) => out.push(*s),
            Inst::Bin(_, _, a, b) | Inst::Cmp(_, _, a, b) => {
                out.push(*a);
                out.push(*b);
            }
            Inst::Select(_, c, a, b) => {
                out.push(*c);
                out.push(*a);
                out.push(*b);
            }
            Inst::Alloc(_, s) => out.push(*s),
            Inst::Free(p) => out.push(*p),
            Inst::Load(_, a, _) => out.push(*a),
            Inst::Store(a, _, v) => {
                out.push(*a);
                out.push(*v);
            }
            Inst::Gep(_, b, i, _, _) => {
                out.push(*b);
                out.push(*i);
            }
            Inst::Call(_, _, args) | Inst::Intr(_, _, args) => out.extend_from_slice(args),
        }
    }

    /// True if this is a memory access (the instructions CARAT guards).
    pub fn is_mem_access(&self) -> bool {
        matches!(self, Inst::Load(_, _, _) | Inst::Store(_, _, _))
    }

    /// The address register of a load/store, if this is one.
    pub fn access_addr(&self) -> Option<Reg> {
        match *self {
            Inst::Load(_, a, _) | Inst::Store(a, _, _) => Some(a),
            _ => None,
        }
    }

    /// True if this instruction uses floating point (Fig. 4's FP-state
    /// criterion).
    pub fn touches_fp(&self) -> bool {
        match self {
            Inst::ConstF(_, _) => true,
            Inst::Bin(_, op, _, _) => op.is_float(),
            _ => false,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::ConstI(d, v) => write!(f, "{d} = const {v}"),
            Inst::ConstF(d, v) => write!(f, "{d} = fconst {v}"),
            Inst::Mov(d, s) => write!(f, "{d} = {s}"),
            Inst::Bin(d, op, a, b) => write!(f, "{d} = {op:?} {a}, {b}"),
            Inst::Cmp(d, op, a, b) => write!(f, "{d} = cmp.{op:?} {a}, {b}"),
            Inst::Select(d, c, a, b) => write!(f, "{d} = select {c}, {a}, {b}"),
            Inst::Alloc(d, s) => write!(f, "{d} = alloc {s}"),
            Inst::Free(p) => write!(f, "free {p}"),
            Inst::Load(d, a, o) => write!(f, "{d} = load [{a}+{o}]"),
            Inst::Store(a, o, v) => write!(f, "store [{a}+{o}], {v}"),
            Inst::Gep(d, b, i, s, o) => write!(f, "{d} = gep {b}, {i}*{s}+{o}"),
            Inst::Call(Some(d), g, args) => write!(f, "{d} = call {g} {args:?}"),
            Inst::Call(None, g, args) => write!(f, "call {g} {args:?}"),
            Inst::Intr(Some(d), i, args) => write!(f, "{d} = intr {i:?} {args:?}"),
            Inst::Intr(None, i, args) => write!(f, "intr {i:?} {args:?}"),
        }
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on a register's truthiness.
    CondBr(Reg, BlockId, BlockId),
    /// Return, optionally with a value.
    Ret(Option<Reg>),
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn succs(&self) -> Vec<BlockId> {
        match *self {
            Term::Br(b) => vec![b],
            Term::CondBr(_, t, e) => vec![t, e],
            Term::Ret(_) => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses() {
        let i = Inst::Bin(Reg(3), BinOp::Add, Reg(1), Reg(2));
        assert_eq!(i.def(), Some(Reg(3)));
        let mut u = vec![];
        i.uses(&mut u);
        assert_eq!(u, vec![Reg(1), Reg(2)]);

        let s = Inst::Store(Reg(4), 8, Reg(5));
        assert_eq!(s.def(), None);
        assert!(s.is_mem_access());
        assert_eq!(s.access_addr(), Some(Reg(4)));
    }

    #[test]
    fn fp_detection() {
        assert!(Inst::Bin(Reg(0), BinOp::FMul, Reg(1), Reg(2)).touches_fp());
        assert!(!Inst::Bin(Reg(0), BinOp::Mul, Reg(1), Reg(2)).touches_fp());
        assert!(Inst::ConstF(Reg(0), 1.0).touches_fp());
    }

    #[test]
    fn term_successors() {
        assert_eq!(Term::Br(BlockId(1)).succs(), vec![BlockId(1)]);
        assert_eq!(
            Term::CondBr(Reg(0), BlockId(1), BlockId(2)).succs(),
            vec![BlockId(1), BlockId(2)]
        );
        assert!(Term::Ret(None).succs().is_empty());
    }

    #[test]
    fn injected_intrinsics() {
        assert!(Intrinsic::CaratGuard.is_injected());
        assert!(Intrinsic::TimeCheck.is_injected());
        assert!(!Intrinsic::Yield.is_injected());
        assert!(!Intrinsic::Trace.is_injected());
    }
}
