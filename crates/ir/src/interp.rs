//! The IR interpreter: cycle-accounted execution with runtime hooks.
//!
//! The interpreter plays the role of "the machine running compiled code" for
//! every compiler-involved experiment:
//!
//! - Each instruction has a cycle cost ([`InterpConfig`]); totals feed the
//!   overhead measurements (CARAT's <6 %, timing-check overhead, etc.).
//! - [`RuntimeHooks`] supplies the behaviour of interweaving intrinsics
//!   (guards, time checks, polls) *and* a per-access policy hook used by the
//!   paging/TLB model, so the same program can run under different stacks.
//! - Execution is *fuel-bounded*: [`Interp::run`] returns after a given
//!   cycle budget so kernels can schedule interpreted threads preemptively,
//!   and time checks can yield mid-program (the fiber experiments).
//! - Memory is a flat physical address space with an allocator that tracks
//!   *pointer provenance* per word and per register. Provenance is the
//!   ground truth CARAT's tracking runtime is validated against, and it is
//!   what makes defragmentation (§IV-A's "memory can be managed at
//!   arbitrary granularity") exact: when an allocation moves, every live
//!   pointer to it — in memory or in registers — is found and patched.

use crate::inst::{BinOp, CmpOp, Inst, Intrinsic, Term};
use crate::module::Module;
use crate::types::{BlockId, FuncId, Reg, Val};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Hasher for the id → base index. Allocation ids are already unique dense
/// integers, so a single multiplicative scramble beats the default SipHash
/// on the alloc/free path (the index is maintained on every allocation).
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type IdMap = HashMap<u64, u64, BuildHasherDefault<IdHasher>>;

/// Identifier of a live allocation (provenance tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocId(pub u64);

/// Per-instruction cycle costs and interpreter limits.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Cost of arithmetic/compare/select/mov/const.
    pub cost_arith: u64,
    /// Cost of a load (cache-hit assumption; translation extras come from
    /// hooks).
    pub cost_load: u64,
    /// Cost of a store.
    pub cost_store: u64,
    /// Cost of pointer arithmetic (`gep`).
    pub cost_gep: u64,
    /// Allocator fast-path cost.
    pub cost_alloc: u64,
    /// Free fast-path cost.
    pub cost_free: u64,
    /// Call (frame setup) cost.
    pub cost_call: u64,
    /// Return cost.
    pub cost_ret: u64,
    /// Branch cost.
    pub cost_branch: u64,
    /// Maximum call depth before a stack-overflow trap.
    pub max_depth: usize,
    /// Heap base address (allocations start here; 0 stays null).
    pub heap_base: u64,
    /// Heap size in bytes.
    pub heap_size: u64,
}

impl Default for InterpConfig {
    fn default() -> InterpConfig {
        InterpConfig {
            cost_arith: 1,
            cost_load: 3,
            cost_store: 3,
            cost_gep: 1,
            cost_alloc: 30,
            cost_free: 15,
            cost_call: 5,
            cost_ret: 3,
            cost_branch: 1,
            max_depth: 4096,
            heap_base: 0x10_000,
            heap_size: 1 << 30,
        }
    }
}

/// An execution fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// Access to an address outside every live allocation.
    BadAccess {
        /// Faulting address.
        addr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// A guard or policy hook denied the access (CARAT protection fault).
    ProtectionFault {
        /// Faulting address.
        addr: u64,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Allocator exhausted.
    OutOfMemory,
    /// Call depth exceeded `max_depth`.
    StackOverflow,
    /// Free of an address that is not a live allocation base.
    BadFree {
        /// The bogus address.
        addr: u64,
    },
    /// A hook aborted execution with a message.
    Aborted(String),
}

/// One memory word: a value plus the provenance of the pointer it may hold.
///
/// Provenance is packed as a raw id with 0 meaning "none" — [`AllocId`]s
/// start at 1, so the zero-filled state of a fresh page is exactly the
/// never-written word `(Val::I(0), None)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MemCell {
    val: Val,
    prov_raw: u64,
}

impl MemCell {
    /// The never-written word: integer zero, no provenance. Fresh pages are
    /// filled with it, and `free` resets words back to it.
    const ZERO: MemCell = MemCell {
        val: Val::I(0),
        prov_raw: 0,
    };

    #[inline]
    fn prov(self) -> Option<AllocId> {
        if self.prov_raw == 0 {
            None
        } else {
            Some(AllocId(self.prov_raw))
        }
    }

    #[inline]
    fn pack_prov(prov: Option<AllocId>) -> u64 {
        match prov {
            Some(id) => id.0,
            None => 0,
        }
    }
}

/// Word cells per page. Each cell covers one *byte address* (the IR's loads
/// and stores are 8-byte words at arbitrary byte addresses, and two words at
/// overlapping addresses are independent cells, exactly as in the original
/// word-map representation), so a page spans `PAGE_CELLS` consecutive byte
/// addresses.
const PAGE_CELLS: usize = 512;
const PAGE_SHIFT: u32 = PAGE_CELLS.trailing_zeros();
const PAGE_MASK: u64 = PAGE_CELLS as u64 - 1;

/// One resident page: its cells plus a dirty watermark — the inclusive-lo /
/// exclusive-hi range of cell indices that may hold a non-zero word. Every
/// write path widens the watermark, so `free` can clear (and the provenance
/// patch sweep can scan) only the written span, keeping both proportional
/// to stored words — matching the word-map layout's cost — rather than to
/// the byte range.
#[derive(Clone)]
struct Page {
    cells: Box<[MemCell]>,
    /// Lowest possibly-dirty cell index (`PAGE_CELLS` when clean).
    lo: u32,
    /// One past the highest possibly-dirty cell index (0 when clean).
    hi: u32,
}

impl Page {
    fn new() -> Page {
        Page {
            cells: vec![MemCell::ZERO; PAGE_CELLS].into_boxed_slice(),
            lo: PAGE_CELLS as u32,
            hi: 0,
        }
    }
}

/// Metadata for one live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Provenance id.
    pub id: AllocId,
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

/// Flat physical memory with an allocator and provenance tracking.
///
/// Addresses are bytes; loads and stores move 8-byte words (the IR's only
/// access width). The allocator is first-fit over a free list with a bump
/// fallback — deliberately fragmentation-prone, because CARAT's
/// defragmentation experiment needs fragmentation to repair.
/// Words live in fixed-size pages allocated on first touch (zero-filled,
/// like fresh pages from an OS), so a load or store is index arithmetic
/// rather than a tree lookup. A last-hit cache in front of the allocation
/// map makes the bounds check on the hot path a single range compare, and an
/// `AllocId → base` index lets defragmentation find an allocation without
/// scanning the live set.
#[derive(Clone)]
pub struct Memory {
    /// Sparse page table: `pages[(addr - page_origin) >> PAGE_SHIFT]`.
    /// Absent pages read as zero; they materialise on first store.
    pages: Vec<Option<Page>>,
    /// Address of cell 0 of page 0 (`heap_base` rounded down to a page
    /// boundary).
    page_origin: u64,
    /// Live allocations keyed by base address.
    allocs: BTreeMap<u64, Allocation>,
    /// O(1) id → base index (kept in lockstep with `allocs`).
    base_by_id: IdMap,
    /// Last allocation that answered `containing()` — the interpreter's
    /// accesses are strongly clustered, so this hits almost always.
    /// Invalidated on free and move (see those methods); plain `alloc` never
    /// relocates a live allocation, so it only ever *replaces* the entry.
    last_hit: Cell<Option<Allocation>>,
    /// Free blocks keyed by base address → size.
    free: BTreeMap<u64, u64>,
    bump: u64,
    limit: u64,
    next_id: u64,
    /// Total bytes currently allocated.
    pub live_bytes: u64,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("allocs", &self.allocs)
            .field("free", &self.free)
            .field("bump", &self.bump)
            .field("limit", &self.limit)
            .field("live_bytes", &self.live_bytes)
            .field("resident_pages", &self.resident_pages())
            .finish_non_exhaustive()
    }
}

impl Memory {
    /// Fresh memory per the config's heap geometry.
    pub fn new(cfg: &InterpConfig) -> Memory {
        Memory {
            pages: Vec::new(),
            page_origin: cfg.heap_base & !PAGE_MASK,
            allocs: BTreeMap::new(),
            base_by_id: IdMap::default(),
            last_hit: Cell::new(None),
            free: BTreeMap::new(),
            bump: cfg.heap_base,
            limit: cfg.heap_base + cfg.heap_size,
            next_id: 1,
            live_bytes: 0,
        }
    }

    /// Read the cell at `addr` (absent pages read as the zero word).
    #[inline]
    fn cell(&self, addr: u64) -> MemCell {
        let pi = ((addr - self.page_origin) >> PAGE_SHIFT) as usize;
        match self.pages.get(pi) {
            Some(Some(page)) => page.cells[(addr & PAGE_MASK) as usize],
            _ => MemCell::ZERO,
        }
    }

    /// Mutable cell at `addr`, materialising its page on first touch and
    /// widening the page's dirty watermark over the handed-out cell.
    #[inline]
    fn cell_mut(&mut self, addr: u64) -> &mut MemCell {
        let pi = ((addr - self.page_origin) >> PAGE_SHIFT) as usize;
        if pi >= self.pages.len() {
            self.pages.resize_with(pi + 1, || None);
        }
        let page = self.pages[pi].get_or_insert_with(Page::new);
        let ci = (addr & PAGE_MASK) as usize;
        page.lo = page.lo.min(ci as u32);
        page.hi = page.hi.max(ci as u32 + 1);
        &mut page.cells[ci]
    }

    /// Reset every cell in `[start, end)` to the never-written word,
    /// touching only resident pages — O(range), not O(live words).
    fn zero_range(&mut self, start: u64, end: u64) {
        let mut addr = start;
        while addr < end {
            let page_end = (addr & !PAGE_MASK) + PAGE_CELLS as u64;
            let chunk_end = end.min(page_end);
            let pi = ((addr - self.page_origin) >> PAGE_SHIFT) as usize;
            if let Some(Some(page)) = self.pages.get_mut(pi) {
                let s = (addr & PAGE_MASK) as usize;
                let e = s + (chunk_end - addr) as usize;
                // Only cells inside the dirty watermark can be non-zero, so
                // clamp the clear to it: free's cost tracks the words
                // actually written, not the freed byte range.
                let cs = s.max(page.lo as usize);
                let ce = e.min(page.hi as usize);
                if cs < ce {
                    page.cells[cs..ce].fill(MemCell::ZERO);
                }
                // A clear covering the whole dirty range leaves the page
                // clean; partial clears leave the watermark conservative.
                if s <= page.lo as usize && page.hi as usize <= e {
                    page.lo = PAGE_CELLS as u32;
                    page.hi = 0;
                }
            }
            addr = chunk_end;
        }
    }

    /// Number of materialised pages (observability: the touched footprint).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Base address of the live allocation with id `id`, in O(1).
    pub fn base_of(&self, id: AllocId) -> Option<u64> {
        self.base_by_id.get(&id.0).copied()
    }

    /// Allocate `size` bytes (rounded up to 8); returns the allocation.
    pub fn alloc(&mut self, size: u64) -> Result<Allocation, Trap> {
        let size = size.max(8).div_ceil(8) * 8;
        // First-fit in the free list.
        let slot = self
            .free
            .iter()
            .find(|(_, &sz)| sz >= size)
            .map(|(&b, &sz)| (b, sz));
        let base = if let Some((b, sz)) = slot {
            self.free.remove(&b);
            if sz > size {
                self.free.insert(b + size, sz - size);
            }
            b
        } else {
            let b = self.bump;
            if b + size > self.limit {
                return Err(Trap::OutOfMemory);
            }
            self.bump += size;
            b
        };
        let a = Allocation {
            id: AllocId(self.next_id),
            base,
            size,
        };
        self.next_id += 1;
        self.allocs.insert(base, a);
        self.base_by_id.insert(a.id.0, base);
        // The fresh allocation is the most likely next access target.
        self.last_hit.set(Some(a));
        self.live_bytes += size;
        Ok(a)
    }

    /// Free the allocation based at `addr`.
    pub fn free(&mut self, addr: u64) -> Result<Allocation, Trap> {
        let a = self.allocs.remove(&addr).ok_or(Trap::BadFree { addr })?;
        self.base_by_id.remove(&a.id.0);
        // A cached hit into the freed region must not survive (compare by
        // base: during a move the same id is briefly live at two bases).
        if self.last_hit.get().is_some_and(|h| h.base == a.base) {
            self.last_hit.set(None);
        }
        // Reset its words and return the range to the free list.
        self.zero_range(a.base, a.base + a.size);
        self.free.insert(a.base, a.size);
        self.coalesce_around(a.base);
        self.live_bytes -= a.size;
        Ok(a)
    }

    fn coalesce_around(&mut self, base: u64) {
        // Merge with the next block if adjacent.
        if let Some(&size) = self.free.get(&base) {
            if let Some((&nb, &nsz)) = self.free.range(base + size..).next() {
                if nb == base + size {
                    self.free.remove(&nb);
                    *self.free.get_mut(&base).expect("present") = size + nsz;
                }
            }
        }
        // Merge with the previous block if adjacent.
        if let Some((&pb, &psz)) = self.free.range(..base).next_back() {
            if pb + psz == base {
                let size = self.free.remove(&base).expect("present");
                *self.free.get_mut(&pb).expect("present") = psz + size;
            }
        }
    }

    /// The allocation containing `addr`, if any. The last hit is cached, so
    /// clustered accesses cost one range compare.
    pub fn containing(&self, addr: u64) -> Option<Allocation> {
        if let Some(a) = self.last_hit.get() {
            if addr.wrapping_sub(a.base) < a.size {
                return Some(a);
            }
        }
        let a = self
            .allocs
            .range(..=addr)
            .next_back()
            .map(|(_, &a)| a)
            .filter(|a| addr < a.base + a.size)?;
        self.last_hit.set(Some(a));
        Some(a)
    }

    /// Load the word at `addr` (must lie in a live allocation; reads of
    /// never-written words are zero, like fresh pages).
    pub fn load(&self, addr: u64) -> Result<(Val, Option<AllocId>), Trap> {
        if self.containing(addr).is_none() {
            return Err(Trap::BadAccess { addr, write: false });
        }
        let c = self.cell(addr);
        Ok((c.val, c.prov()))
    }

    /// Store a word (with provenance) at `addr`.
    pub fn store(&mut self, addr: u64, val: Val, prov: Option<AllocId>) -> Result<(), Trap> {
        if self.containing(addr).is_none() {
            return Err(Trap::BadAccess { addr, write: true });
        }
        *self.cell_mut(addr) = MemCell {
            val,
            prov_raw: MemCell::pack_prov(prov),
        };
        Ok(())
    }

    /// All live allocations in address order.
    pub fn allocations(&self) -> Vec<Allocation> {
        self.allocs.values().copied().collect()
    }

    /// Number of live allocations.
    pub fn n_allocs(&self) -> usize {
        self.allocs.len()
    }

    /// Free-list fragmentation: number of free holes below the bump pointer.
    pub fn free_holes(&self) -> usize {
        self.free.len()
    }

    /// The free list as `(base, size)` pairs in address order (used by
    /// CARAT's compaction to plan downward moves).
    pub fn free_blocks(&self) -> Vec<(u64, u64)> {
        self.free.iter().map(|(&b, &s)| (b, s)).collect()
    }

    /// Move the allocation with id `id` to a freshly allocated region,
    /// patching every memory word whose provenance is `id` so stored
    /// pointers stay valid. Returns `(old_base, new_base)`.
    ///
    /// This is the memory-mobility half of CARAT (§IV-A): data movement
    /// "operates similarly to a garbage collector". Register patching is the
    /// interpreter's job (the runtime cannot see registers) — see
    /// [`Interp::patch_provenance`].
    pub fn move_allocation(&mut self, id: AllocId) -> Result<(u64, u64), Trap> {
        let old = self
            .base_of(id)
            .and_then(|b| self.allocs.get(&b).copied())
            .ok_or(Trap::Aborted(format!("move of dead allocation {id:?}")))?;
        // Allocate the new home first (may trap OOM). This consumes a fresh
        // id that is immediately retired below, matching the original
        // allocator's id sequence.
        let size = old.size;
        let new = self.alloc(size)?;
        // Preserve identity: the moved allocation keeps its provenance id.
        let new_base = new.base;
        self.allocs.get_mut(&new_base).expect("just inserted").id = id;
        self.base_by_id.remove(&new.id.0);
        // Copy words (the new home is all-zero: it came from freed or
        // never-touched space, so copying the full range is exact).
        let mut addr = old.base;
        while addr < old.base + size {
            let c = self.cell(addr);
            if c != MemCell::ZERO {
                *self.cell_mut(new_base + (addr - old.base)) = c;
            }
            addr += 1;
        }
        // Release the old region (also resets the old words). `free` drops
        // the id → base entry and any cached hit for the *old* base; the
        // moved allocation is then re-indexed at its new home.
        self.free(old.base)?;
        let moved = Allocation {
            id,
            base: new_base,
            size,
        };
        self.base_by_id.insert(id.0, new_base);
        self.last_hit.set(Some(moved));
        // Patch every stored pointer into the moved allocation: scan the
        // resident pages for cells carrying its provenance (the same full
        // sweep the word-map layout performed, now a linear pass).
        for page in self.pages.iter_mut().flatten() {
            if page.lo >= page.hi {
                continue;
            }
            // Patching rewrites cells that are already non-zero, so the
            // watermark needs no widening here.
            for c in page.cells[page.lo as usize..page.hi as usize].iter_mut() {
                if c.prov_raw == id.0 {
                    let off = (c.val.as_i() as u64).wrapping_sub(old.base);
                    c.val = Val::I((new_base + off) as i64);
                }
            }
        }
        Ok((old.base, new_base))
    }

    /// Flip bit `bit` of the integer word at `addr`, returning
    /// `(old, new)` values. This is the fault plane's injection point for
    /// memory corruption: the word changes but its provenance tag does
    /// *not*, which is exactly the inconsistency CARAT's escape audit
    /// detects. Returns `None` for float cells (no meaningful bit index in
    /// the modeled word) — callers pick another site.
    pub fn flip_bit(&mut self, addr: u64, bit: u32) -> Option<(i64, i64)> {
        let c = self.cell_mut(addr);
        match c.val {
            Val::I(v) => {
                let new = v ^ (1i64 << (bit % 64));
                c.val = Val::I(new);
                Some((v, new))
            }
            Val::F(_) => None,
        }
    }

    /// Withdraw `[base, base + size)` from the free list so it is never
    /// handed out again — the quarantine half of CARAT's
    /// quarantine-and-relocate recovery. The range must currently be free
    /// (i.e. the damaged allocation was already moved away); returns
    /// `false` without modifying anything if it is not.
    pub fn quarantine_range(&mut self, base: u64, size: u64) -> bool {
        let Some((&fb, &fsz)) = self.free.range(..=base).next_back() else {
            return false;
        };
        if base + size > fb + fsz {
            return false;
        }
        self.free.remove(&fb);
        if fb < base {
            self.free.insert(fb, base - fb);
        }
        if base + size < fb + fsz {
            self.free.insert(base + size, (fb + fsz) - (base + size));
        }
        true
    }
}

/// One call frame.
#[derive(Debug, Clone)]
pub struct Frame {
    func: FuncId,
    block: BlockId,
    ip: usize,
    /// Register file.
    pub regs: Vec<Val>,
    /// Pointer provenance of each register.
    pub prov: Vec<Option<AllocId>>,
    /// Register to receive the callee's return value.
    ret_to: Option<Reg>,
}

impl Frame {
    #[inline]
    fn val(&self, r: Reg) -> Val {
        self.regs[r.0 as usize]
    }

    #[inline]
    fn get(&self, r: Reg) -> (Val, Option<AllocId>) {
        (self.regs[r.0 as usize], self.prov[r.0 as usize])
    }

    #[inline]
    fn set(&mut self, d: Reg, v: Val, p: Option<AllocId>) {
        self.regs[d.0 as usize] = v;
        self.prov[d.0 as usize] = p;
    }
}

/// Result of an intrinsic hook.
#[derive(Debug, Clone)]
pub enum HookAction {
    /// Continue, charging `cycles` and writing `value` to the destination.
    Continue {
        /// Value produced (if the intrinsic has a destination).
        value: Option<Val>,
        /// Cycles charged for the intrinsic's work.
        cycles: u64,
    },
    /// Charge `cycles`, then pause execution (status [`ExecStatus::Yielded`]).
    Yield {
        /// Cycles charged before yielding.
        cycles: u64,
    },
    /// Abort with a trap.
    Trap(Trap),
}

/// Environment supplied by the stack the program runs on.
pub trait RuntimeHooks {
    /// Handle an interweaving intrinsic. `mem` is the program's memory;
    /// `now` is the cycles consumed so far in this interpreter.
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        args: &[Val],
        mem: &mut Memory,
        now: u64,
    ) -> HookAction;

    /// Per-access policy (translation cost, protection). Returns extra
    /// cycles to charge. The default is a no-op (identity-mapped Nautilus:
    /// "TLB misses are extremely rare ... there are no page faults").
    fn check_access(&mut self, _addr: u64, _write: bool, _now: u64) -> Result<u64, Trap> {
        Ok(0)
    }

    /// Observe an allocation (CARAT cross-checks its tracking table).
    fn on_alloc(&mut self, _a: Allocation) {}

    /// Observe a free.
    fn on_free(&mut self, _a: Allocation) {}
}

/// Hooks for a plain run: no intrinsic behaviour, no access policy.
#[derive(Debug, Clone, Default)]
pub struct NullHooks;

impl RuntimeHooks for NullHooks {
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        _args: &[Val],
        _mem: &mut Memory,
        _now: u64,
    ) -> HookAction {
        match which {
            // With no runtime attached, reading the timer returns the cycle
            // count so far — good enough for organic programs.
            Intrinsic::ReadTimer => HookAction::Continue {
                value: Some(Val::I(0)),
                cycles: 1,
            },
            _ => HookAction::Continue {
                value: Some(Val::I(0)),
                cycles: 0,
            },
        }
    }
}

/// Why [`Interp::run`] returned.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecStatus {
    /// The outermost function returned (with its value, if any).
    Done(Option<Val>),
    /// The cycle budget was exhausted mid-program.
    OutOfFuel,
    /// A hook requested a yield (fiber switch, heartbeat promotion point).
    Yielded,
    /// Execution trapped.
    Trapped(Trap),
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Total cycles consumed (instruction costs + hook charges).
    pub cycles: u64,
    /// Instructions executed (terminators included).
    pub insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Intrinsics executed, by injected/organic split.
    pub injected_intrinsics: u64,
    /// Cycles charged by hooks for injected intrinsics — the numerator of
    /// every "instrumentation overhead" measurement.
    pub injected_cycles: u64,
    /// Values emitted through the `Trace` intrinsic (testing).
    pub trace: Vec<i64>,
}

/// The interpreter: a module, a memory, a frame stack, and statistics.
pub struct Interp {
    cfg: InterpConfig,
    /// Program memory (public so runtimes can inspect/move allocations).
    pub mem: Memory,
    frames: Vec<Frame>,
    /// Execution statistics.
    pub stats: ExecStats,
    done_value: Option<Val>,
}

impl Interp {
    /// New interpreter. The module is passed to [`Interp::start`] and
    /// [`Interp::run`] rather than borrowed, so long-lived owners (PIK
    /// processes, virtines, fibers) can hold interpreter state without
    /// self-referential lifetimes. Passing a *different* module between
    /// calls is a logic error; debug builds catch gross mismatches through
    /// out-of-range panics.
    pub fn new(cfg: InterpConfig) -> Interp {
        let mem = Memory::new(&cfg);
        Interp {
            cfg,
            mem,
            frames: Vec::new(),
            stats: ExecStats::default(),
            done_value: None,
        }
    }

    /// Begin a call to `f` with integer/float arguments. Replaces any
    /// existing call stack.
    pub fn start(&mut self, module: &Module, f: FuncId, args: &[Val]) {
        let func = module.func(f);
        assert_eq!(
            args.len(),
            func.n_params,
            "{} expects {} args",
            func.name,
            func.n_params
        );
        let mut regs = vec![Val::I(0); func.n_regs];
        let prov = vec![None; func.n_regs];
        regs[..args.len()].copy_from_slice(args);
        self.frames = vec![Frame {
            func: f,
            block: BlockId(0),
            ip: 0,
            regs,
            prov,
            ret_to: None,
        }];
        self.done_value = None;
    }

    /// True when the program has finished or trapped (nothing to resume).
    pub fn finished(&self) -> bool {
        self.frames.is_empty()
    }

    /// Swap this interpreter's memory for another, returning the previous
    /// one. This is how a *shared single address space* is modelled (the
    /// PIK kernel, §IV-A): the kernel owns one [`Memory`] and lends it to
    /// whichever process runs its slice; allocator state and contents
    /// travel with it, so every process's allocations coexist in the same
    /// physical space.
    pub fn swap_memory(&mut self, mem: Memory) -> Memory {
        std::mem::replace(&mut self.mem, mem)
    }

    /// The value returned by the outermost call once finished.
    pub fn result(&self) -> Option<Val> {
        self.done_value
    }

    /// Patch every register (in every live frame) whose provenance is `id`,
    /// relocating it from `old_base` to `new_base`. Pairs with
    /// [`Memory::move_allocation`] to complete a defragmentation step.
    pub fn patch_provenance(&mut self, id: AllocId, old_base: u64, new_base: u64) -> usize {
        let mut patched = 0;
        for fr in &mut self.frames {
            for (r, p) in fr.regs.iter_mut().zip(fr.prov.iter()) {
                if *p == Some(id) {
                    let off = (r.as_i() as u64).wrapping_sub(old_base);
                    *r = Val::I((new_base + off) as i64);
                    patched += 1;
                }
            }
        }
        patched
    }

    /// Run until completion, yield, trap, or `fuel` cycles are consumed.
    /// Resumable: calling `run` again continues where the last call left
    /// off (after a yield or out-of-fuel return).
    pub fn run(&mut self, module: &Module, hooks: &mut dyn RuntimeHooks, fuel: u64) -> ExecStatus {
        let start_cycles = self.stats.cycles;
        loop {
            if self.frames.is_empty() {
                return ExecStatus::Done(self.done_value);
            }
            if self.stats.cycles - start_cycles >= fuel {
                return ExecStatus::OutOfFuel;
            }
            match self.step(module, hooks) {
                StepOut::Continue => {}
                StepOut::Yield => return ExecStatus::Yielded,
                StepOut::Trap(t) => return ExecStatus::Trapped(t),
            }
        }
    }

    /// Run to completion with a generous default budget; panics on traps.
    /// Convenience for tests and single-shot program execution.
    pub fn run_to_completion(
        &mut self,
        module: &Module,
        hooks: &mut dyn RuntimeHooks,
    ) -> Option<Val> {
        loop {
            match self.run(module, hooks, u64::MAX / 4) {
                ExecStatus::Done(v) => return v,
                ExecStatus::Yielded => continue,
                ExecStatus::OutOfFuel => continue,
                ExecStatus::Trapped(t) => panic!("program trapped: {t:?}"),
            }
        }
    }

    /// One instruction (or terminator). Decodes by reference straight out of
    /// the module — no per-instruction clone — with `self` split into
    /// disjoint field borrows so frame mutation, memory traffic, and cycle
    /// accounting coexist with the borrowed instruction.
    fn step(&mut self, module: &Module, hooks: &mut dyn RuntimeHooks) -> StepOut {
        let Interp {
            cfg,
            mem,
            frames,
            stats,
            done_value,
        } = self;
        let fi = frames.len() - 1;
        let (func_id, block, ip) = {
            let fr = &frames[fi];
            (fr.func, fr.block, fr.ip)
        };
        let func = module.func(func_id);
        let blk = &func.blocks[block.index()];

        if ip >= blk.insts.len() {
            // Execute the terminator.
            stats.insts += 1;
            match blk.term.as_ref().expect("verified IR") {
                Term::Br(t) => {
                    stats.cycles += cfg.cost_branch;
                    let fr = &mut frames[fi];
                    fr.block = *t;
                    fr.ip = 0;
                }
                Term::CondBr(c, t, e) => {
                    stats.cycles += cfg.cost_branch;
                    let fr = &mut frames[fi];
                    fr.block = if fr.val(*c).is_true() { *t } else { *e };
                    fr.ip = 0;
                }
                Term::Ret(v) => {
                    stats.cycles += cfg.cost_ret;
                    let fr = &frames[fi];
                    let (val, prov) = match v {
                        Some(r) => {
                            let (v, p) = fr.get(*r);
                            (Some(v), p)
                        }
                        None => (None, None),
                    };
                    let ret_to = fr.ret_to;
                    frames.pop();
                    match frames.last_mut() {
                        Some(caller) => {
                            if let Some(dst) = ret_to {
                                caller.set(dst, val.unwrap_or(Val::I(0)), prov);
                            }
                        }
                        None => *done_value = val,
                    }
                }
            }
            return StepOut::Continue;
        }

        let inst = &blk.insts[ip];
        frames[fi].ip += 1;
        stats.insts += 1;

        match inst {
            Inst::ConstI(d, v) => {
                stats.cycles += cfg.cost_arith;
                frames[fi].set(*d, Val::I(*v), None);
            }
            Inst::ConstF(d, v) => {
                stats.cycles += cfg.cost_arith;
                frames[fi].set(*d, Val::F(*v), None);
            }
            Inst::Mov(d, s) => {
                stats.cycles += cfg.cost_arith;
                let fr = &mut frames[fi];
                let (v, p) = fr.get(*s);
                fr.set(*d, v, p);
            }
            Inst::Bin(d, op, a, b) => {
                stats.cycles += cfg.cost_arith;
                let fr = &mut frames[fi];
                let (va, vb) = (fr.val(*a), fr.val(*b));
                let val = match op {
                    BinOp::Add => Val::I(va.as_i().wrapping_add(vb.as_i())),
                    BinOp::Sub => Val::I(va.as_i().wrapping_sub(vb.as_i())),
                    BinOp::Mul => Val::I(va.as_i().wrapping_mul(vb.as_i())),
                    BinOp::Div => {
                        if vb.as_i() == 0 {
                            return StepOut::Trap(Trap::DivByZero);
                        }
                        Val::I(va.as_i().wrapping_div(vb.as_i()))
                    }
                    BinOp::Rem => {
                        if vb.as_i() == 0 {
                            return StepOut::Trap(Trap::DivByZero);
                        }
                        Val::I(va.as_i().wrapping_rem(vb.as_i()))
                    }
                    BinOp::And => Val::I(va.as_i() & vb.as_i()),
                    BinOp::Or => Val::I(va.as_i() | vb.as_i()),
                    BinOp::Xor => Val::I(va.as_i() ^ vb.as_i()),
                    BinOp::Shl => Val::I(va.as_i().wrapping_shl(vb.as_i() as u32)),
                    BinOp::Shr => Val::I(va.as_i().wrapping_shr(vb.as_i() as u32)),
                    BinOp::FAdd => Val::F(va.as_f() + vb.as_f()),
                    BinOp::FSub => Val::F(va.as_f() - vb.as_f()),
                    BinOp::FMul => Val::F(va.as_f() * vb.as_f()),
                    BinOp::FDiv => Val::F(va.as_f() / vb.as_f()),
                };
                // Pointer arithmetic through Add/Sub keeps provenance when
                // exactly one operand is a pointer.
                let p = match op {
                    BinOp::Add | BinOp::Sub => {
                        match (fr.prov[a.0 as usize], fr.prov[b.0 as usize]) {
                            (Some(p), None) => Some(p),
                            (None, Some(p)) => Some(p),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                fr.set(*d, val, p);
            }
            Inst::Cmp(d, op, a, b) => {
                stats.cycles += cfg.cost_arith;
                let fr = &mut frames[fi];
                let (va, vb) = (fr.val(*a), fr.val(*b));
                let r = match (va, vb) {
                    (Val::F(_), _) | (_, Val::F(_)) => {
                        let (x, y) = (va.as_f(), vb.as_f());
                        match op {
                            CmpOp::Eq => x == y,
                            CmpOp::Ne => x != y,
                            CmpOp::Lt => x < y,
                            CmpOp::Le => x <= y,
                            CmpOp::Gt => x > y,
                            CmpOp::Ge => x >= y,
                        }
                    }
                    (Val::I(x), Val::I(y)) => match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    },
                };
                fr.set(*d, Val::I(r as i64), None);
            }
            Inst::Select(d, c, a, b) => {
                stats.cycles += cfg.cost_arith;
                let fr = &mut frames[fi];
                let (v, p) = if fr.val(*c).is_true() {
                    fr.get(*a)
                } else {
                    fr.get(*b)
                };
                fr.set(*d, v, p);
            }
            Inst::Alloc(d, s) => {
                stats.cycles += cfg.cost_alloc;
                let size = frames[fi].val(*s).as_i().max(0) as u64;
                match mem.alloc(size) {
                    Ok(a) => {
                        hooks.on_alloc(a);
                        frames[fi].set(*d, Val::I(a.base as i64), Some(a.id));
                    }
                    Err(t) => return StepOut::Trap(t),
                }
            }
            Inst::Free(p) => {
                stats.cycles += cfg.cost_free;
                let addr = frames[fi].val(*p).as_ptr();
                match mem.free(addr) {
                    Ok(a) => hooks.on_free(a),
                    Err(t) => return StepOut::Trap(t),
                }
            }
            Inst::Load(d, a, off) => {
                stats.cycles += cfg.cost_load;
                stats.loads += 1;
                let addr = (frames[fi].val(*a).as_i() + off) as u64;
                match hooks.check_access(addr, false, stats.cycles) {
                    Ok(extra) => stats.cycles += extra,
                    Err(t) => return StepOut::Trap(t),
                }
                match mem.load(addr) {
                    Ok((v, p)) => frames[fi].set(*d, v, p),
                    Err(t) => return StepOut::Trap(t),
                }
            }
            Inst::Store(a, off, v) => {
                stats.cycles += cfg.cost_store;
                stats.stores += 1;
                let addr = (frames[fi].val(*a).as_i() + off) as u64;
                match hooks.check_access(addr, true, stats.cycles) {
                    Ok(extra) => stats.cycles += extra,
                    Err(t) => return StepOut::Trap(t),
                }
                let (val, p) = frames[fi].get(*v);
                if let Err(t) = mem.store(addr, val, p) {
                    return StepOut::Trap(t);
                }
            }
            Inst::Gep(d, b, i, scale, off) => {
                stats.cycles += cfg.cost_gep;
                let fr = &mut frames[fi];
                let base = fr.val(*b).as_i();
                let idx = fr.val(*i).as_i();
                let addr = base
                    .wrapping_add(idx.wrapping_mul(*scale))
                    .wrapping_add(*off);
                let p = fr.prov[b.0 as usize];
                fr.set(*d, Val::I(addr), p);
            }
            Inst::Call(dst, g, args) => {
                stats.cycles += cfg.cost_call;
                if frames.len() >= cfg.max_depth {
                    return StepOut::Trap(Trap::StackOverflow);
                }
                let callee = module.func(*g);
                debug_assert_eq!(
                    args.len(),
                    callee.n_params,
                    "arity mismatch calling {}",
                    callee.name
                );
                let mut regs = vec![Val::I(0); callee.n_regs];
                let mut prov = vec![None; callee.n_regs];
                let caller = &frames[fi];
                for (i, &r) in args.iter().enumerate() {
                    let (v, p) = caller.get(r);
                    regs[i] = v;
                    prov[i] = p;
                }
                frames.push(Frame {
                    func: *g,
                    block: BlockId(0),
                    ip: 0,
                    regs,
                    prov,
                    ret_to: *dst,
                });
            }
            Inst::Intr(dst, which, args) => {
                let which = *which;
                // Intrinsics take at most a handful of arguments; marshal
                // them through a stack buffer so the hot path stays
                // allocation-free.
                let mut buf = [Val::I(0); 4];
                let mut heap: Vec<Val> = Vec::new();
                let argv: &[Val] = {
                    let fr = &frames[fi];
                    if args.len() <= buf.len() {
                        for (i, &r) in args.iter().enumerate() {
                            buf[i] = fr.val(r);
                        }
                        &buf[..args.len()]
                    } else {
                        heap.extend(args.iter().map(|&r| fr.val(r)));
                        &heap
                    }
                };
                if which.is_injected() {
                    stats.injected_intrinsics += 1;
                }
                let action = hooks.intrinsic(which, argv, mem, stats.cycles);
                if which == Intrinsic::Trace {
                    if let Some(v) = argv.first() {
                        stats.trace.push(v.as_i());
                    }
                }
                match action {
                    HookAction::Continue { value, cycles } => {
                        stats.cycles += cycles;
                        if which.is_injected() {
                            stats.injected_cycles += cycles;
                        }
                        if let Some(d) = dst {
                            frames[fi].set(*d, value.unwrap_or(Val::I(0)), None);
                        }
                    }
                    HookAction::Yield { cycles } => {
                        stats.cycles += cycles;
                        if which.is_injected() {
                            stats.injected_cycles += cycles;
                        }
                        if let Some(d) = dst {
                            frames[fi].set(*d, Val::I(0), None);
                        }
                        return StepOut::Yield;
                    }
                    HookAction::Trap(t) => return StepOut::Trap(t),
                }
            }
        }
        StepOut::Continue
    }
}

enum StepOut {
    Continue,
    Yield,
    Trap(Trap),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::inst::{BinOp, CmpOp, Intrinsic};

    fn run_main(m: &Module, args: &[Val]) -> (Option<Val>, ExecStats) {
        let main = m.by_name("main").expect("main");
        let mut it = Interp::new(InterpConfig::default());
        it.start(m, main, args);
        let v = it.run_to_completion(m, &mut NullHooks);
        (v, it.stats.clone())
    }

    #[test]
    fn flip_bit_corrupts_word_but_not_provenance() {
        let mut mem = Memory::new(&InterpConfig::default());
        let a = mem.alloc(64).expect("alloc");
        mem.store(a.base, Val::I(0x10), Some(a.id)).expect("store");
        let (old, new) = mem.flip_bit(a.base, 3).expect("int cell");
        assert_eq!(old, 0x10);
        assert_eq!(new, 0x18);
        // The stale provenance tag survives the flip — that mismatch is
        // what the CARAT audit keys on.
        assert_eq!(mem.load(a.base).expect("load"), (Val::I(0x18), Some(a.id)));
        // Float cells are not flippable.
        mem.store(a.base + 8, Val::F(1.5), None).expect("store");
        assert!(mem.flip_bit(a.base + 8, 0).is_none());
    }

    #[test]
    fn quarantine_range_withholds_freed_frame() {
        let mut mem = Memory::new(&InterpConfig::default());
        let a = mem.alloc(64).expect("alloc");
        let _b = mem.alloc(64).expect("alloc"); // pin the bump past `a`
        let base = a.base;
        // Live range: not free, so not quarantinable.
        assert!(!mem.quarantine_range(base, 64));
        mem.free(base).expect("free");
        assert!(mem.quarantine_range(base, 64));
        // The hole is gone: a fresh 64-byte alloc must land elsewhere.
        let c = mem.alloc(64).expect("alloc");
        assert_ne!(c.base, base);
        // Double quarantine is a no-op failure.
        assert!(!mem.quarantine_range(base, 64));
    }

    #[test]
    fn quarantine_range_splits_larger_hole() {
        let mut mem = Memory::new(&InterpConfig::default());
        let a = mem.alloc(24).expect("alloc");
        let _pin = mem.alloc(8).expect("alloc");
        mem.free(a.base).expect("free");
        // Quarantine only the middle word of the 24-byte hole.
        assert!(mem.quarantine_range(a.base + 8, 8));
        let holes = mem.free_blocks();
        assert!(holes.contains(&(a.base, 8)));
        assert!(holes.contains(&(a.base + 16, 8)));
        assert!(!holes
            .iter()
            .any(|&(b, s)| b <= a.base + 8 && a.base + 16 <= b + s));
    }

    #[test]
    fn arithmetic_program() {
        // main(x) = x * 2 + 3
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 1);
        let x = fb.param(0);
        let two = fb.const_i(2);
        let three = fb.const_i(3);
        let t = fb.bin(BinOp::Mul, x, two);
        let r = fb.bin(BinOp::Add, t, three);
        fb.ret(Some(r));
        m.add(fb.finish());
        let (v, stats) = run_main(&m, &[Val::I(10)]);
        assert_eq!(v, Some(Val::I(23)));
        assert!(stats.cycles > 0);
    }

    #[test]
    fn loop_sums_array() {
        // main(n): a = alloc(8n); a[i] = i; return sum(a[i])
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 1);
        let n = fb.param(0);
        let eight = fb.const_i(8);
        let bytes = fb.bin(BinOp::Mul, n, eight);
        let a = fb.alloc(bytes);
        let zero = fb.const_i(0);
        let i = fb.mov(zero);
        let sum = fb.mov(zero);
        let head = fb.new_block();
        let body = fb.new_block();
        let head2 = fb.new_block();
        let body2 = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        // fill loop
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, i, n);
        fb.cond_br(c, body, head2);
        fb.switch_to(body);
        let p = fb.gep(a, i, 8, 0);
        fb.store(p, 0, i);
        let one = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one);
        fb.br(head);
        // sum loop
        fb.switch_to(head2);
        fb.mov_to(i, zero);
        fb.br(body2);
        fb.switch_to(body2);
        let c2 = fb.cmp(CmpOp::Lt, i, n);
        let cont = fb.new_block();
        fb.cond_br(c2, cont, exit);
        fb.switch_to(cont);
        let p2 = fb.gep(a, i, 8, 0);
        let v = fb.load(p2, 0);
        fb.bin_to(sum, BinOp::Add, sum, v);
        let one2 = fb.const_i(1);
        fb.bin_to(i, BinOp::Add, i, one2);
        fb.br(body2);
        fb.switch_to(exit);
        fb.free(a);
        fb.ret(Some(sum));
        m.add(fb.finish());

        let (v, stats) = run_main(&m, &[Val::I(10)]);
        assert_eq!(v, Some(Val::I(45)));
        assert_eq!(stats.loads, 10);
        assert_eq!(stats.stores, 10);
    }

    #[test]
    fn recursive_fib() {
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)  — Fig. 5's kernel.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("fib", 1);
        let n = fb.param(0);
        let two = fb.const_i(2);
        let c = fb.cmp(CmpOp::Lt, n, two);
        let base = fb.new_block();
        let rec = fb.new_block();
        fb.cond_br(c, base, rec);
        fb.switch_to(base);
        fb.ret(Some(n));
        fb.switch_to(rec);
        let one = fb.const_i(1);
        let n1 = fb.bin(BinOp::Sub, n, one);
        let n2 = fb.bin(BinOp::Sub, n, two);
        let fid = FuncId(0);
        let a = fb.call(fid, &[n1]);
        let b = fb.call(fid, &[n2]);
        let s = fb.bin(BinOp::Add, a, b);
        fb.ret(Some(s));
        m.add(fb.finish());

        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[Val::I(15)]);
        let v = it.run_to_completion(&m, &mut NullHooks);
        assert_eq!(v, Some(Val::I(610)));
    }

    #[test]
    fn fuel_bounds_execution() {
        // Infinite loop must return OutOfFuel, and remain resumable.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 0);
        let head = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        fb.br(head);
        m.add(fb.finish());

        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        assert_eq!(it.run(&m, &mut NullHooks, 1000), ExecStatus::OutOfFuel);
        let c1 = it.stats.cycles;
        assert_eq!(it.run(&m, &mut NullHooks, 1000), ExecStatus::OutOfFuel);
        assert!(it.stats.cycles >= c1 + 1000);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 1);
        let x = fb.param(0);
        let z = fb.const_i(0);
        let r = fb.bin(BinOp::Div, x, z);
        fb.ret(Some(r));
        m.add(fb.finish());
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[Val::I(5)]);
        assert_eq!(
            it.run(&m, &mut NullHooks, u64::MAX / 4),
            ExecStatus::Trapped(Trap::DivByZero)
        );
    }

    #[test]
    fn wild_access_traps() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 0);
        let bogus = fb.const_i(0xdead_beef);
        let _ = fb.load(bogus, 0);
        fb.ret(None);
        m.add(fb.finish());
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        match it.run(&m, &mut NullHooks, u64::MAX / 4) {
            ExecStatus::Trapped(Trap::BadAccess { addr, write: false }) => {
                assert_eq!(addr, 0xdead_beef)
            }
            other => panic!("expected BadAccess, got {other:?}"),
        }
    }

    #[test]
    fn stack_overflow_traps() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 0);
        fb.call_void(FuncId(0), &[]);
        fb.ret(None);
        m.add(fb.finish());
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        assert_eq!(
            it.run(&m, &mut NullHooks, u64::MAX / 4),
            ExecStatus::Trapped(Trap::StackOverflow)
        );
    }

    #[test]
    fn trace_intrinsic_records() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 0);
        let v = fb.const_i(7);
        fb.intr_void(Intrinsic::Trace, &[v]);
        fb.ret(None);
        m.add(fb.finish());
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        it.run_to_completion(&m, &mut NullHooks);
        assert_eq!(it.stats.trace, vec![7]);
    }

    #[test]
    fn allocator_reuses_freed_blocks_and_coalesces() {
        let cfg = InterpConfig::default();
        let mut mem = Memory::new(&cfg);
        let a = mem.alloc(64).unwrap();
        let b = mem.alloc(64).unwrap();
        let c = mem.alloc(64).unwrap();
        assert_eq!(mem.n_allocs(), 3);
        mem.free(a.base).unwrap();
        mem.free(b.base).unwrap();
        // a and b coalesce into one 128-byte hole.
        assert_eq!(mem.free_holes(), 1);
        let d = mem.alloc(128).unwrap();
        assert_eq!(d.base, a.base, "coalesced hole should be reused");
        mem.free(c.base).unwrap();
        mem.free(d.base).unwrap();
    }

    #[test]
    fn move_allocation_patches_stored_pointers() {
        let cfg = InterpConfig::default();
        let mut mem = Memory::new(&cfg);
        let a = mem.alloc(64).unwrap();
        let holder = mem.alloc(16).unwrap();
        // holder[0] = &a[24]; a[24] = 99.
        mem.store(holder.base, Val::I((a.base + 24) as i64), Some(a.id))
            .unwrap();
        mem.store(a.base + 24, Val::I(99), None).unwrap();

        let (old, new) = mem.move_allocation(a.id).unwrap();
        assert_eq!(old, a.base);
        assert_ne!(new, old);
        // The stored pointer has been patched and still reaches the value.
        let (ptr, prov) = mem.load(holder.base).unwrap();
        assert_eq!(ptr.as_ptr(), new + 24);
        assert_eq!(prov, Some(a.id));
        let (v, _) = mem.load(ptr.as_ptr()).unwrap();
        assert_eq!(v, Val::I(99));
        // The old location is gone.
        assert!(mem.load(old + 24).is_err());
    }

    #[test]
    fn free_leaves_no_residual_words() {
        // Fill a large allocation (pointer-carrying words included), free
        // it, and reclaim the same region: every word must read back as the
        // fresh zero with no provenance, and a later move of the pointee
        // must find nothing to patch in the reclaimed region.
        let cfg = InterpConfig::default();
        let mut mem = Memory::new(&cfg);
        let big = mem.alloc(64 * 1024).unwrap();
        let other = mem.alloc(64).unwrap();
        for i in 0..big.size / 8 {
            mem.store(big.base + i * 8, Val::I(other.base as i64), Some(other.id))
                .unwrap();
        }
        assert!(mem.resident_pages() > 0);
        mem.free(big.base).unwrap();

        let again = mem.alloc(64 * 1024).unwrap();
        assert_eq!(again.base, big.base, "first-fit reclaims the hole");
        for i in 0..again.size / 8 {
            assert_eq!(mem.load(again.base + i * 8).unwrap(), (Val::I(0), None));
        }
        // Residual provenant words would be rewritten here; zeros must stay.
        mem.move_allocation(other.id).unwrap();
        for i in 0..again.size / 8 {
            assert_eq!(mem.load(again.base + i * 8).unwrap(), (Val::I(0), None));
        }
    }

    #[test]
    fn allocation_cache_never_serves_stale_entries() {
        let cfg = InterpConfig::default();
        let mut mem = Memory::new(&cfg);
        let a = mem.alloc(64).unwrap();
        mem.store(a.base, Val::I(1), None).unwrap(); // cache primed on `a`
        mem.free(a.base).unwrap();
        // A stale cache entry would answer this load; it must trap.
        assert!(mem.load(a.base).is_err());

        let b = mem.alloc(64).unwrap();
        assert_eq!(b.base, a.base, "hole reused");
        mem.store(b.base + 8, Val::I(2), None).unwrap();
        let (old, new) = mem.move_allocation(b.id).unwrap();
        assert!(mem.load(old + 8).is_err(), "old home must be dead");
        assert_eq!(mem.load(new + 8).unwrap(), (Val::I(2), None));
        assert_eq!(mem.base_of(b.id), Some(new));
        assert_eq!(mem.base_of(a.id), None);
    }

    #[test]
    fn provenance_flows_through_gep_and_memory() {
        // p = alloc; q = gep p; store q to memory; load it back: provenance
        // must survive the round trip.
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("main", 0);
        let sz = fb.const_i(64);
        let p = fb.alloc(sz);
        let one = fb.const_i(1);
        let q = fb.gep(p, one, 8, 0);
        let slot_sz = fb.const_i(8);
        let slot = fb.alloc(slot_sz);
        fb.store(slot, 0, q);
        let back = fb.load(slot, 0);
        fb.store(back, 0, one); // store through the reloaded pointer
        fb.ret(Some(p));
        m.add(fb.finish());

        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, FuncId(0), &[]);
        let p = it.run_to_completion(&m, &mut NullHooks).unwrap().as_ptr();
        let (v, _) = it.mem.load(p + 8).unwrap();
        assert_eq!(v, Val::I(1));
    }
}
