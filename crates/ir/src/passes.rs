//! The pass framework.
//!
//! Interweaving transformations (CARAT guard injection/elision/hoisting,
//! timing-call injection, device-poll injection, virtine extraction) are
//! module-to-module rewrites implementing [`Pass`]. The [`PassManager`]
//! runs them in order, verifying the module after each pass, and collects
//! per-pass statistics that the experiment reports surface (e.g. "guards
//! inserted / elided / hoisted" in the CARAT table).

use crate::module::Module;
use crate::verify::assert_valid;
use std::collections::BTreeMap;

/// Statistics reported by one pass run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Named counters (e.g. `guards_inserted`, `checks_hoisted`).
    pub counters: BTreeMap<String, u64>,
}

impl PassStats {
    /// Increment a named counter by `n`.
    pub fn bump(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Read a counter (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merge another stats record into this one.
    pub fn merge(&mut self, other: &PassStats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// A module transformation.
pub trait Pass {
    /// Pass name for reports.
    fn name(&self) -> &'static str;
    /// Transform the module, returning statistics.
    fn run(&mut self, m: &mut Module) -> PassStats;
}

/// Runs a pipeline of passes, verifying after each.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new() }
    }

    /// Append a pass.
    #[allow(clippy::should_implement_trait)] // builder idiom, not arithmetic
    pub fn add(mut self, p: impl Pass + 'static) -> PassManager {
        self.passes.push(Box::new(p));
        self
    }

    /// Run all passes in order; returns `(pass name, stats)` per pass.
    /// Panics if any pass produces structurally invalid IR.
    pub fn run(&mut self, m: &mut Module) -> Vec<(String, PassStats)> {
        let mut out = Vec::with_capacity(self.passes.len());
        for p in &mut self.passes {
            let stats = p.run(m);
            assert_valid(m);
            out.push((p.name().to_string(), stats));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::inst::Inst;

    /// A toy pass that deletes every `Mov` and counts them.
    struct StripMovs;
    impl Pass for StripMovs {
        fn name(&self) -> &'static str {
            "strip-movs"
        }
        fn run(&mut self, m: &mut Module) -> PassStats {
            let mut stats = PassStats::default();
            for f in &mut m.funcs {
                for b in &mut f.blocks {
                    let before = b.insts.len();
                    b.insts.retain(|i| !matches!(i, Inst::Mov(_, _)));
                    stats.bump("movs_removed", (before - b.insts.len()) as u64);
                }
            }
            stats
        }
    }

    #[test]
    fn manager_runs_passes_and_collects_stats() {
        let mut m = Module::new();
        let mut fb = FunctionBuilder::new("f", 1);
        let p = fb.param(0);
        let _a = fb.mov(p);
        let _b = fb.mov(p);
        fb.ret(None);
        m.add(fb.finish());

        let results = PassManager::new().add(StripMovs).run(&mut m);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, "strip-movs");
        assert_eq!(results[0].1.get("movs_removed"), 2);
        assert_eq!(m.inst_count(), 0);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = PassStats::default();
        a.bump("x", 2);
        let mut b = PassStats::default();
        b.bump("x", 3);
        b.bump("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
        assert_eq!(a.get("z"), 0);
    }
}
