//! Modules: collections of functions plus entry-point metadata.

use crate::func::Function;
use crate::types::FuncId;

/// A compilation unit. CARAT's PIK mode (§IV-A) treats a module as the unit
/// of separate compilation and attestation; the virtine pass treats each
/// `is_virtine` function as an isolation boundary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Functions; `FuncId(i)` indexes this vector.
    pub funcs: Vec<Function>,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Add a function, returning its id.
    pub fn add(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Look up a function by name.
    pub fn by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Borrow a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutably borrow a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Total instruction count across functions.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }

    /// Ids of functions marked `virtine`.
    pub fn virtine_funcs(&self) -> Vec<FuncId> {
        self.funcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_virtine)
            .map(|(i, _)| FuncId(i as u32))
            .collect()
    }

    /// A stable content hash of the module (used by PIK attestation, §IV-A:
    /// a transformed module is "cryptographically attested" before being
    /// admitted to the kernel; we model the attestation token as a hash).
    pub fn content_hash(&self) -> u64 {
        // FNV-1a over the debug rendering: stable, dependency-free, and
        // sensitive to any instruction change, which is all attestation
        // needs in this model.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for f in &self.funcs {
            for byte in format!("{f}").bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::inst::BinOp;

    fn simple(name: &str, virtine: bool) -> Function {
        let mut fb = FunctionBuilder::new(name, 1);
        if virtine {
            fb.virtine();
        }
        let p = fb.param(0);
        let one = fb.const_i(1);
        let r = fb.bin(BinOp::Add, p, one);
        fb.ret(Some(r));
        fb.finish()
    }

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new();
        let a = m.add(simple("a", false));
        let b = m.add(simple("b", true));
        assert_eq!(m.by_name("a"), Some(a));
        assert_eq!(m.by_name("b"), Some(b));
        assert_eq!(m.by_name("c"), None);
        assert_eq!(m.virtine_funcs(), vec![b]);
    }

    #[test]
    fn content_hash_changes_with_code() {
        let mut m1 = Module::new();
        m1.add(simple("a", false));
        let mut m2 = Module::new();
        m2.add(simple("a", false));
        assert_eq!(m1.content_hash(), m2.content_hash());

        // Different code → different hash.
        let mut fb = FunctionBuilder::new("a", 1);
        let p = fb.param(0);
        let two = fb.const_i(2);
        let r = fb.bin(BinOp::Mul, p, two);
        fb.ret(Some(r));
        let mut m3 = Module::new();
        m3.add(fb.finish());
        assert_ne!(m1.content_hash(), m3.content_hash());
    }
}
