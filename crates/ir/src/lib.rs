//! # interweave-ir
//!
//! A small compiler intermediate representation with analyses, a pass
//! framework, and a cycle-accounted interpreter.
//!
//! The paper's interweaving examples lean on "modern compiler analysis and
//! transformation" as the enabling technology: CARAT (§IV-A) injects and
//! then elides/hoists memory guards, compiler-based timing (§IV-C) injects
//! time checks so fibers can be preempted without interrupts, blending
//! (§V-C) injects device-poll checks, and virtines (§IV-D) outline annotated
//! functions into isolated contexts. All of those are *real program
//! transformations* here: passes rewrite IR, and the interpreter runs the
//! transformed programs with explicit cycle accounting so overheads are
//! measured, not asserted.
//!
//! Layout:
//! - [`types`], [`inst`], [`func`], [`module`]: the IR itself and builders.
//! - [`verify`]: structural validation (used by every pass test).
//! - [`analysis`]: CFG, dominators, natural loops, definition points.
//! - [`passes`]: the pass manager and shared pass utilities.
//! - [`interp`]: the interpreter — segmented flat memory, runtime hooks for
//!   intrinsics and per-access policies, fuel-bounded execution slices.
//! - [`programs`]: benchmark-kernel builders shared by the experiment crates.

#![warn(missing_docs)]

pub mod analysis;
pub mod func;
pub mod inline;
pub mod inst;
pub mod interp;
pub mod module;
pub mod opt;
pub mod passes;
pub mod programs;
pub mod text;
pub mod types;
pub mod verify;

pub use func::{Block, Function, FunctionBuilder};
pub use inst::{BinOp, CmpOp, Inst, Intrinsic, Term};
pub use interp::{ExecStatus, Interp, InterpConfig, RuntimeHooks, Trap};
pub use module::Module;
pub use types::{BlockId, FuncId, Reg, Val};
