//! Cross-layer stack composition: make [`StackConfig`] load-bearing.
//!
//! The paper's Figure 1 thesis is that the *composition of the stack* is
//! the experimental variable. [`StackConfig`] names the five axes; this
//! module makes each named point buildable: [`StackBuilder`] takes a
//! configuration plus a [`MachineConfig`] preset and materializes the
//! actual composed objects — the OS personality ([`OsModel`]), the
//! interrupt [`DeliveryMode`], the translation regime (paging model,
//! identity mapping, or the CARAT guard pipeline), the coherence policy,
//! and the isolation launch path — after rejecting incoherent axis
//! combinations with a typed [`ComposeError`].
//!
//! Every harness-run experiment routes its stack selection through here,
//! so a figure binary cannot measure a composition that could not exist:
//! `StackConfig` provably maps to one runtime composition, and new stacks
//! (the §V-A RTK/PIK/CCK kernel modes, the RISC-V preset) are one-line
//! scenarios instead of hand-rolled per-binary machine setup.
//!
//! ```
//! use interweave::compose::{compose, ComposeError, StackBuilder};
//! use interweave::prelude::*;
//!
//! // The fully interwoven stack builds...
//! let stack = compose(StackConfig::interwoven(), MachineConfig::xeon_server_2s()).unwrap();
//! assert_eq!(stack.os.name(), "Nautilus");
//!
//! // ...the framekernel mid-point of the OS axis builds too...
//! let fk = compose(StackConfig::framekernel(), MachineConfig::xeon_server_2s()).unwrap();
//! assert_eq!(fk.os.name(), "Aster");
//!
//! // ...while CARAT translation on the commodity kernel is rejected.
//! let mut broken = StackConfig::commodity();
//! broken.translation = interweave::core::stack::Translation::Carat;
//! let err = StackBuilder::new(broken, MachineConfig::xeon_server_2s())
//!     .build()
//!     .unwrap_err();
//! assert_eq!(err, ComposeError::CaratOnCommodityKernel);
//! ```

use interweave_carat::runtime::GuardCosts;
use interweave_coherence::protocol::CohMode;
use interweave_core::interrupt::DeliveryMode;
use interweave_core::machine::MachineConfig;
use interweave_core::stack::{
    CoherencePolicy, Isolation, OsPoint, StackConfig, TimingSource, Translation,
};
use interweave_ir::passes::PassStats;
use interweave_ir::Module;
use interweave_kernel::os::{model_for, OsModel};
use interweave_kernel::paging::PagingModel;
use interweave_omp::OmpMode;
use interweave_virtines::bespoke::BespokeSpec;
use interweave_virtines::wasp::LaunchPath;
use std::fmt;

/// An incoherent axis combination, rejected at composition time.
///
/// Each variant names the cross-layer dependency the configuration broke.
/// The rules are the contract the table-driven validation test enumerates:
/// a `StackConfig` either builds, or returns exactly one of these — never a
/// panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComposeError {
    /// The framekernel's whole premise is enforced in-kernel isolation by
    /// real page tables (the OSTD split keeps domains apart with paging,
    /// not trust). An Aster-like kernel with raw `Identity` mapping — or
    /// with CARAT's guards *instead of* page tables — is a contradiction,
    /// so `OsPoint::AsterLike` requires `Translation::Paging`.
    FramekernelRequiresPaging,
    /// CARAT translation (§IV-A) replaces paging with compiler guards and a
    /// tracking runtime *inside one address space*. The commodity kernel's
    /// user/kernel split (signals, per-process page tables) is exactly what
    /// CARAT removes, so `Translation::Carat` requires an NK-like kernel.
    CaratOnCommodityKernel,
    /// Identity mapping (§III) exposes physical addresses to every task; a
    /// commodity kernel cannot identity-map untrusted user processes, so
    /// `Translation::Identity` requires an NK-like kernel.
    IdentityOnCommodityKernel,
    /// Selective coherence deactivation (§V-B) is "driven by language-level
    /// sharing knowledge" — it needs the compiler in the loop, so
    /// `CoherencePolicy::Selective` requires
    /// `TimingSource::CompilerInjected` (the compiler-interwoven toolchain).
    SelectiveCoherenceWithoutCompilerToolchain,
    /// Bespoke contexts (§V-E) are *synthesized by the compiler* from the
    /// workload, so `Isolation::Bespoke` requires
    /// `TimingSource::CompilerInjected`.
    BespokeWithoutCompilerToolchain,
    /// Pipeline interrupts (§V-D) inject delivery into instruction fetch
    /// with no privilege-level change — only sound when every recipient
    /// runs raw kernel-mode with nothing to revalidate on entry. The
    /// framekernel's checked handler trampolines and Linux's user/kernel
    /// split both break that, so a machine with
    /// `DeliveryMode::PipelineBranch` requires `OsPoint::NkLike`.
    PipelineDeliveryRequiresNkKernel,
}

impl ComposeError {
    /// Short machine-readable rule name (tables, JSON).
    pub fn rule(&self) -> &'static str {
        match self {
            ComposeError::FramekernelRequiresPaging => "aster-needs-paging",
            ComposeError::CaratOnCommodityKernel => "carat-needs-nk",
            ComposeError::IdentityOnCommodityKernel => "identity-needs-nk",
            ComposeError::SelectiveCoherenceWithoutCompilerToolchain => "selective-needs-compiler",
            ComposeError::BespokeWithoutCompilerToolchain => "bespoke-needs-compiler",
            ComposeError::PipelineDeliveryRequiresNkKernel => "pipeline-needs-nk",
        }
    }
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::FramekernelRequiresPaging => {
                write!(
                    f,
                    "the framekernel's isolation is enforced by page tables (paging required)"
                )
            }
            ComposeError::CaratOnCommodityKernel => {
                write!(
                    f,
                    "CARAT translation requires the interwoven (NK) kernel path"
                )
            }
            ComposeError::IdentityOnCommodityKernel => {
                write!(
                    f,
                    "identity mapping requires the interwoven (NK) kernel path"
                )
            }
            ComposeError::SelectiveCoherenceWithoutCompilerToolchain => write!(
                f,
                "selective coherence needs language-level sharing knowledge (compiler timing)"
            ),
            ComposeError::BespokeWithoutCompilerToolchain => write!(
                f,
                "bespoke contexts are compiler-synthesized (compiler timing required)"
            ),
            ComposeError::PipelineDeliveryRequiresNkKernel => write!(
                f,
                "pipeline interrupt delivery requires the raw NK kernel path"
            ),
        }
    }
}

impl std::error::Error for ComposeError {}

/// The materialized translation regime of a composed stack.
pub enum TranslationSetup {
    /// Conventional paging: a TLB + demand-fault model priced from the
    /// machine's cost model.
    Paging(PagingModel),
    /// Raw identity mapping with the largest page size: translation is
    /// free and unprotected (§III).
    Identity,
    /// CARAT: the compiler guard pipeline plus the tracking runtime's cost
    /// table. Call [`TranslationSetup::instrument`] to run the pipeline on
    /// a module before admitting it.
    Carat {
        /// Per-call costs of the tracking runtime.
        costs: GuardCosts,
        /// Run the guard-elision/hoisting optimizer passes (§IV-A's
        /// "optimized" row) or keep naive instrumentation.
        optimize: bool,
    },
}

impl TranslationSetup {
    /// Display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TranslationSetup::Paging(_) => "paging",
            TranslationSetup::Identity => "identity",
            TranslationSetup::Carat { .. } => "carat",
        }
    }

    /// Apply this regime's compile-time component to a module: the CARAT
    /// guard pipeline instruments it (returning per-pass statistics);
    /// paging and identity mapping need no compiler work and return an
    /// empty pass list.
    pub fn instrument(&self, m: &mut Module) -> Vec<(String, PassStats)> {
        match self {
            TranslationSetup::Carat { optimize, .. } => interweave_carat::instrument(m, *optimize),
            TranslationSetup::Paging(_) | TranslationSetup::Identity => Vec::new(),
        }
    }
}

/// One runtime composition: every object a `StackConfig` names, built and
/// ready to price an experiment.
pub struct ComposedStack {
    /// The configuration this stack was built from.
    pub config: StackConfig,
    /// The kernel personality (the `OsPoint` axis materialized) on the
    /// machine.
    pub os: Box<dyn OsModel>,
    /// How the machine delivers interrupts (IDT or §V-D pipeline branch).
    pub delivery: DeliveryMode,
    /// The translation regime.
    pub translation: TranslationSetup,
    /// The coherence policy, in the protocol simulator's terms.
    pub coherence: CohMode,
    /// The isolation launch path, in the virtine pool's terms. `Virtine`
    /// composes to the snapshot path (the steady-state serving mechanism);
    /// `Bespoke` to a minimal synthesized context.
    pub isolation: LaunchPath,
}

impl fmt::Debug for ComposedStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ComposedStack")
            .field("config", &self.config)
            .field("os", &self.os.name())
            .field("delivery", &self.delivery)
            .field("translation", &self.translation.name())
            .field("coherence", &self.coherence)
            .field("isolation", &self.isolation.name())
            .finish()
    }
}

impl ComposedStack {
    /// The machine this stack runs on.
    pub fn machine(&self) -> &MachineConfig {
        self.os.machine()
    }

    /// The OpenMP mode this composition corresponds to, when it is one of
    /// the named OpenMP stacks (`commodity` ↦ Linux user-level libomp,
    /// [`StackConfig::framekernel`] ↦ unmodified libomp on the framekernel,
    /// [`StackConfig::rtk`]/[`StackConfig::pik`]/[`StackConfig::cck`] ↦
    /// the kernel modes). Other compositions have no OpenMP incarnation.
    pub fn omp_mode(&self) -> Option<OmpMode> {
        let c = self.config;
        if c == StackConfig::commodity() {
            Some(OmpMode::LinuxUser)
        } else if c == StackConfig::framekernel() {
            Some(OmpMode::AsterUser)
        } else if c == StackConfig::rtk() {
            Some(OmpMode::Rtk)
        } else if c == StackConfig::pik() {
            Some(OmpMode::Pik)
        } else if c == StackConfig::cck() {
            Some(OmpMode::Cck)
        } else {
            None
        }
    }
}

/// Builds a [`ComposedStack`] from a configuration and a machine preset.
#[derive(Debug, Clone)]
pub struct StackBuilder {
    config: StackConfig,
    machine: MachineConfig,
    carat_optimize: bool,
}

impl StackBuilder {
    /// A builder for `config` on `machine`.
    pub fn new(config: StackConfig, machine: MachineConfig) -> StackBuilder {
        StackBuilder {
            config,
            machine,
            carat_optimize: true,
        }
    }

    /// Whether a CARAT composition runs the guard optimizer passes
    /// (default) or keeps naive instrumentation (§IV-A's ablation).
    pub fn carat_optimize(mut self, optimize: bool) -> StackBuilder {
        self.carat_optimize = optimize;
        self
    }

    /// Check the configuration against the machine without building
    /// anything. Rules are checked in a fixed order (translation,
    /// coherence, isolation, delivery) so rejections are deterministic.
    pub fn validate(&self) -> Result<(), ComposeError> {
        let c = &self.config;
        if c.os == OsPoint::AsterLike && c.translation != Translation::Paging {
            return Err(ComposeError::FramekernelRequiresPaging);
        }
        if c.translation == Translation::Carat && c.os == OsPoint::LinuxLike {
            return Err(ComposeError::CaratOnCommodityKernel);
        }
        if c.translation == Translation::Identity && c.os == OsPoint::LinuxLike {
            return Err(ComposeError::IdentityOnCommodityKernel);
        }
        if c.coherence == CoherencePolicy::Selective && c.timing != TimingSource::CompilerInjected {
            return Err(ComposeError::SelectiveCoherenceWithoutCompilerToolchain);
        }
        if c.isolation == Isolation::Bespoke && c.timing != TimingSource::CompilerInjected {
            return Err(ComposeError::BespokeWithoutCompilerToolchain);
        }
        if self.machine.delivery == DeliveryMode::PipelineBranch && c.os != OsPoint::NkLike {
            return Err(ComposeError::PipelineDeliveryRequiresNkKernel);
        }
        Ok(())
    }

    /// Materialize the composition, or return the first broken rule.
    pub fn build(self) -> Result<ComposedStack, ComposeError> {
        self.validate()?;
        let StackBuilder {
            config,
            machine,
            carat_optimize,
        } = self;
        let os: Box<dyn OsModel> = model_for(config.os, machine.clone());
        let translation = match config.translation {
            Translation::Paging => TranslationSetup::Paging(PagingModel::new(&machine.cost)),
            Translation::Identity => TranslationSetup::Identity,
            Translation::Carat => TranslationSetup::Carat {
                costs: GuardCosts::default(),
                optimize: carat_optimize,
            },
        };
        let coherence = match config.coherence {
            CoherencePolicy::FullMesi => CohMode::Full,
            CoherencePolicy::Selective => CohMode::Selective,
        };
        let isolation = match config.isolation {
            Isolation::Process => LaunchPath::Process,
            Isolation::Container => LaunchPath::Container,
            Isolation::FullVm => LaunchPath::FullVm,
            Isolation::Virtine => LaunchPath::VirtineSnapshot,
            Isolation::Bespoke => LaunchPath::Bespoke(BespokeSpec::minimal()),
        };
        Ok(ComposedStack {
            config,
            delivery: machine.delivery,
            os,
            translation,
            coherence,
            isolation,
        })
    }
}

/// Compose `config` on `machine` with default builder knobs.
pub fn compose(config: StackConfig, machine: MachineConfig) -> Result<ComposedStack, ComposeError> {
    StackBuilder::new(config, machine).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MachineConfig {
        MachineConfig::test(8)
    }

    #[test]
    fn named_presets_all_build() {
        for cfg in [
            StackConfig::commodity(),
            StackConfig::interwoven(),
            StackConfig::nautilus(),
            StackConfig::framekernel(),
            StackConfig::rtk(),
            StackConfig::pik(),
            StackConfig::cck(),
        ] {
            let stack = compose(cfg, mc()).unwrap_or_else(|e| panic!("{cfg} rejected: {e}"));
            assert_eq!(stack.config, cfg);
        }
    }

    #[test]
    fn composed_objects_track_the_axes() {
        let c = compose(StackConfig::commodity(), mc()).unwrap();
        assert_eq!(c.os.name(), "Linux");
        assert!(matches!(c.translation, TranslationSetup::Paging(_)));
        assert_eq!(c.coherence, CohMode::Full);
        assert_eq!(c.isolation, LaunchPath::Process);
        assert_eq!(c.omp_mode(), Some(OmpMode::LinuxUser));

        let fk = compose(StackConfig::framekernel(), mc()).unwrap();
        assert_eq!(fk.os.name(), "Aster");
        assert!(matches!(fk.translation, TranslationSetup::Paging(_)));
        assert_eq!(fk.omp_mode(), Some(OmpMode::AsterUser));

        let i = compose(StackConfig::interwoven(), mc()).unwrap();
        assert_eq!(i.os.name(), "Nautilus");
        assert!(matches!(
            i.translation,
            TranslationSetup::Carat { optimize: true, .. }
        ));
        assert_eq!(i.coherence, CohMode::Selective);
        assert_eq!(i.isolation, LaunchPath::VirtineSnapshot);
        assert_eq!(i.omp_mode(), None, "interwoven is not an OpenMP stack");
    }

    #[test]
    fn omp_presets_map_to_their_modes() {
        let modes: Vec<Option<OmpMode>> =
            [StackConfig::rtk(), StackConfig::pik(), StackConfig::cck()]
                .into_iter()
                .map(|c| compose(c, mc()).unwrap().omp_mode())
                .collect();
        assert_eq!(
            modes,
            vec![Some(OmpMode::Rtk), Some(OmpMode::Pik), Some(OmpMode::Cck)]
        );
    }

    #[test]
    fn carat_on_commodity_kernel_is_typed_rejection() {
        let cfg = StackConfig {
            translation: Translation::Carat,
            ..StackConfig::commodity()
        };
        assert_eq!(
            compose(cfg, mc()).unwrap_err(),
            ComposeError::CaratOnCommodityKernel
        );
    }

    #[test]
    fn pipeline_delivery_needs_nk_kernel() {
        let pipeline = mc().with_pipeline_interrupts();
        assert_eq!(
            compose(StackConfig::commodity(), pipeline.clone()).unwrap_err(),
            ComposeError::PipelineDeliveryRequiresNkKernel
        );
        // The framekernel's checked trampolines disqualify it too.
        assert_eq!(
            compose(StackConfig::framekernel(), pipeline.clone()).unwrap_err(),
            ComposeError::PipelineDeliveryRequiresNkKernel
        );
        let nk = compose(StackConfig::nautilus(), pipeline).unwrap();
        assert_eq!(nk.delivery, DeliveryMode::PipelineBranch);
    }

    #[test]
    fn framekernel_requires_paging() {
        // Aster + Identity and Aster + Carat are both contradictions of
        // the framekernel premise, and both reject with the same rule.
        for translation in [Translation::Identity, Translation::Carat] {
            let cfg = StackConfig {
                translation,
                ..StackConfig::framekernel()
            };
            assert_eq!(
                compose(cfg, mc()).unwrap_err(),
                ComposeError::FramekernelRequiresPaging,
                "{translation:?}"
            );
        }
    }

    #[test]
    fn carat_instrument_runs_the_guard_pipeline() {
        let prog = interweave_ir::programs::stream_triad(16);
        let stack = compose(StackConfig::interwoven(), mc()).unwrap();
        let mut m = prog.module.clone();
        let stats = stack.translation.instrument(&mut m);
        assert!(!stats.is_empty(), "carat must run passes");
        // Paging stacks need no compiler work.
        let commodity = compose(StackConfig::commodity(), mc()).unwrap();
        let mut m2 = prog.module.clone();
        assert!(commodity.translation.instrument(&mut m2).is_empty());
    }

    #[test]
    fn composed_stack_is_shareable_across_sweep_workers() {
        fn assert_sync<T: Sync + Send>(_: &T) {}
        let stack = compose(StackConfig::interwoven(), mc()).unwrap();
        assert_sync(&stack);
    }
}
