//! Facade crate re-exporting the whole Interweave workspace.
//!
//! ```
//! use interweave::prelude::*;
//!
//! // The design space the paper names, as data:
//! assert_eq!(StackConfig::interwoven().interweaving_degree(), 5);
//! // A machine to price mechanisms on:
//! let knl = MachineConfig::phi_knl();
//! assert_eq!(knl.dispatch_cost(), Cycles(1000)); // §V-D's measured cost
//! ```
pub mod compose;

pub use interweave_blend as blend;
pub use interweave_carat as carat;
pub use interweave_coherence as coherence;
pub use interweave_core as core;
pub use interweave_fibers as fibers;
pub use interweave_heartbeat as heartbeat;
pub use interweave_ir as ir;
pub use interweave_kernel as kernel;
pub use interweave_omp as omp;
pub use interweave_virtines as virtines;

/// Common imports for working with the laboratory.
pub mod prelude {
    pub use crate::compose::{compose, ComposeError, ComposedStack, StackBuilder};
    pub use interweave_core::machine::{CostModel, MachineConfig, Platform};
    pub use interweave_core::stack::StackConfig;
    pub use interweave_core::{Cycles, DeliveryMode, Freq};
    pub use interweave_ir::programs;
    pub use interweave_kernel::os::{LinuxModel, NkModel, OsModel};
}
