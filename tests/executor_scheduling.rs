//! Integration: OpenMP loop schedules executed on the kernel executor.
//!
//! The `omp` crate's schedules decide *who runs which iterations*; the
//! `kernel` crate's executor decides *when*. Composing them shows a classic
//! scheduling result end-to-end on the working kernel: blocked static
//! assignment concentrates an imbalanced region on one thread, while
//! round-robin chunking spreads it — and the makespan difference is exactly
//! the imbalance.

use interweave::core::machine::MachineConfig;
use interweave::core::Cycles;
use interweave::kernel::executor::Executor;
use interweave::kernel::work::{Work, WorkStep};
use interweave::omp::schedule::{assign, Chunk, Schedule};

/// Iteration cost function: the first quarter of the iteration space is 4×
/// heavier (a boundary region of a physical simulation, say).
fn iter_cost(i: u64, n: u64) -> Cycles {
    if i < n / 4 {
        Cycles(400)
    } else {
        Cycles(100)
    }
}

/// A worker executing its assigned chunks iteration by iteration.
struct ChunkWorker {
    chunks: Vec<Chunk>,
    n: u64,
    at_chunk: usize,
    at_iter: u64,
}

impl ChunkWorker {
    fn new(chunks: Vec<Chunk>, n: u64) -> ChunkWorker {
        let at_iter = chunks.first().map(|c| c.lo).unwrap_or(0);
        ChunkWorker {
            chunks,
            n,
            at_chunk: 0,
            at_iter,
        }
    }
}

impl Work for ChunkWorker {
    fn step(&mut self, _cpu: usize, _now: Cycles) -> WorkStep {
        loop {
            let Some(c) = self.chunks.get(self.at_chunk) else {
                return WorkStep::Done;
            };
            if self.at_iter < c.hi {
                let i = self.at_iter;
                self.at_iter += 1;
                return WorkStep::Compute(iter_cost(i, self.n));
            }
            self.at_chunk += 1;
            if let Some(next) = self.chunks.get(self.at_chunk) {
                self.at_iter = next.lo;
            }
        }
    }
}

fn run_schedule(schedule: Schedule, n: u64, threads: usize) -> (Cycles, u64) {
    let mc = MachineConfig::test(threads);
    let mut e = Executor::new(mc, Cycles(1_000_000)); // no preemption noise
    let chunks = assign(schedule, n, threads);
    for t in 0..threads {
        let mine: Vec<Chunk> = chunks.iter().filter(|c| c.thread == t).copied().collect();
        e.spawn(t, Box::new(ChunkWorker::new(mine, n)));
    }
    assert!(e.run(), "all workers must finish");
    let total: u64 = e.stats.task_executed.iter().map(|c| c.get()).sum();
    (e.stats.makespan, total)
}

#[test]
fn round_robin_chunking_beats_blocked_static_under_imbalance() {
    let n = 4_000u64;
    let threads = 8;
    let (blocked, total_a) = run_schedule(Schedule::Static, n, threads);
    let (rr, total_b) = run_schedule(Schedule::StaticChunk(16), n, threads);
    // Same total work either way.
    assert_eq!(total_a, total_b);
    // Blocked static puts the whole heavy quarter on threads 0–1; chunked
    // round-robin spreads it. The makespan gap is the point.
    assert!(
        rr.as_f64() < 0.75 * blocked.as_f64(),
        "chunked {rr} should beat blocked {blocked}"
    );
}

#[test]
fn balanced_loops_make_the_schedules_equivalent() {
    // With uniform costs (skip the heavy region by starting past it), the
    // two schedules tie to within switch costs.
    let n = 3_000u64;
    let threads = 6;
    // Uniform-cost worker: reuse ChunkWorker over the uniform region only.
    let run = |schedule| {
        let mc = MachineConfig::test(threads);
        let mut e = Executor::new(mc, Cycles(1_000_000));
        let chunks = assign(schedule, n, threads);
        for t in 0..threads {
            let mine: Vec<Chunk> = chunks
                .iter()
                .filter(|c| c.thread == t)
                .map(|c| Chunk {
                    thread: c.thread,
                    lo: c.lo + n, // shift past the heavy quarter
                    hi: c.hi + n,
                })
                .collect();
            e.spawn(t, Box::new(ChunkWorker::new(mine, 4 * n)));
        }
        assert!(e.run());
        e.stats.makespan
    };
    let a = run(Schedule::Static);
    let b = run(Schedule::StaticChunk(25));
    let ratio = a.as_f64() / b.as_f64();
    assert!(
        (0.9..=1.1).contains(&ratio),
        "balanced schedules should tie: {a} vs {b}"
    );
}

#[test]
fn executor_parallelism_matches_schedule_width() {
    // 1 thread vs 8 threads on the same loop: near-8× makespan reduction.
    let n = 4_000u64;
    let (solo, _) = run_schedule(Schedule::Static, n, 1);
    let (eight, _) = run_schedule(Schedule::Static, n, 8);
    let speedup = solo.as_f64() / eight.as_f64();
    // The heavy quarter bounds perfect scaling under blocked static; just
    // require substantial parallelism.
    assert!(speedup > 3.0, "speedup {speedup:.2}");
}
