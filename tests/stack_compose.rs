//! Table-driven validation of the whole stack design space.
//!
//! [`StackConfig::enumerate`] yields all 180 axis combinations (the OS
//! axis has three points: Nautilus, the Aster-like framekernel, and
//! Linux); every one must either build a [`ComposedStack`] or come back as
//! exactly the typed [`ComposeError`] this test's independent rule table
//! predicts — never a panic. The rule table deliberately restates the
//! composition rules (first match in check order wins) so a drift in
//! either place fails loudly.

use interweave::compose::{compose, ComposeError, StackBuilder, TranslationSetup};
use interweave::core::machine::MachineConfig;
use interweave::core::stack::{
    CoherencePolicy, Isolation, OsPoint, StackConfig, TimingSource, Translation,
};
use interweave::core::DeliveryMode;

/// Independent statement of the composition rules, in the builder's
/// documented check order (framekernel premise, translation, coherence,
/// isolation, delivery).
fn expected_rejection(c: StackConfig, machine: &MachineConfig) -> Option<ComposeError> {
    let commodity_kernel = c.os == OsPoint::LinuxLike;
    if c.os == OsPoint::AsterLike && c.translation != Translation::Paging {
        return Some(ComposeError::FramekernelRequiresPaging);
    }
    if c.translation == Translation::Carat && commodity_kernel {
        return Some(ComposeError::CaratOnCommodityKernel);
    }
    if c.translation == Translation::Identity && commodity_kernel {
        return Some(ComposeError::IdentityOnCommodityKernel);
    }
    if c.coherence == CoherencePolicy::Selective && c.timing != TimingSource::CompilerInjected {
        return Some(ComposeError::SelectiveCoherenceWithoutCompilerToolchain);
    }
    if c.isolation == Isolation::Bespoke && c.timing != TimingSource::CompilerInjected {
        return Some(ComposeError::BespokeWithoutCompilerToolchain);
    }
    if machine.delivery == DeliveryMode::PipelineBranch && c.os != OsPoint::NkLike {
        return Some(ComposeError::PipelineDeliveryRequiresNkKernel);
    }
    None
}

#[test]
fn every_axis_combination_builds_or_is_rejected_with_the_predicted_error() {
    // Both delivery regimes: the pipeline machine adds the §V-D rule.
    let machines = [
        MachineConfig::xeon_server_2s(),
        MachineConfig::xeon_server_2s().with_pipeline_interrupts(),
    ];
    let mut built = 0usize;
    let mut rejected = 0usize;
    for machine in &machines {
        for cfg in StackConfig::enumerate() {
            let result = compose(cfg, machine.clone());
            match expected_rejection(cfg, machine) {
                None => {
                    let stack = result.unwrap_or_else(|e| {
                        panic!("{cfg} on {} must build, got {e}", machine.name)
                    });
                    // The composition mirrors the configuration it came from.
                    assert_eq!(stack.config, cfg);
                    assert_eq!(stack.os.name(), cfg.os.name());
                    assert_eq!(
                        stack.translation.name(),
                        match cfg.translation {
                            Translation::Paging => "paging",
                            Translation::Identity => "identity",
                            Translation::Carat => "carat",
                        }
                    );
                    assert_eq!(stack.delivery, machine.delivery);
                    built += 1;
                }
                Some(err) => {
                    assert_eq!(
                        result.as_ref().map(|_| ()).unwrap_err(),
                        &err,
                        "{cfg} on {} must be rejected as {err:?}",
                        machine.name
                    );
                    // validate() agrees with build() without constructing.
                    assert_eq!(StackBuilder::new(cfg, machine.clone()).validate(), Err(err));
                    rejected += 1;
                }
            }
        }
    }
    assert_eq!(built + rejected, 2 * 180, "the sweep covers the full space");
    // The exact split is a function of the rule table; pinning it makes a
    // silent rule change (or an axis-size change) fail loudly. Per machine:
    // IDT builds 70 (42 NK + 14 Aster + 14 Linux); the pipeline machine
    // builds only the 42 NK points.
    assert_eq!(built, 112, "built {built} compositions");
    assert_eq!(rejected, 248, "rejected {rejected} compositions");
}

#[test]
fn every_rejection_rule_fires_and_names_itself() {
    let machines = [
        MachineConfig::xeon_server_2s(),
        MachineConfig::xeon_server_2s().with_pipeline_interrupts(),
    ];
    let mut seen = std::collections::BTreeSet::new();
    for machine in &machines {
        for cfg in StackConfig::enumerate() {
            if let Err(e) = compose(cfg, machine.clone()) {
                seen.insert(e.rule());
            }
        }
    }
    let all: Vec<&str> = seen.into_iter().collect();
    assert_eq!(
        all,
        vec![
            "aster-needs-paging",
            "bespoke-needs-compiler",
            "carat-needs-nk",
            "identity-needs-nk",
            "pipeline-needs-nk",
            "selective-needs-compiler",
        ],
        "every ComposeError variant must be reachable from the design space"
    );
}

#[test]
fn carat_optimize_knob_reaches_the_translation_setup() {
    let naive = StackBuilder::new(StackConfig::pik(), MachineConfig::xeon_server_2s())
        .carat_optimize(false)
        .build()
        .expect("pik builds");
    match naive.translation {
        TranslationSetup::Carat { optimize, .. } => assert!(!optimize),
        other => panic!("pik must compose carat translation, got {}", other.name()),
    }
}

#[test]
fn stack_config_serde_round_trips_across_the_whole_space() {
    for cfg in StackConfig::enumerate() {
        let json = serde_json::to_string(&cfg).expect("serializable");
        let back: StackConfig = serde_json::from_str(&json).expect("parseable");
        assert_eq!(back, cfg, "round-trip must be lossless for {cfg}");
    }
}
