//! Cross-layer fault-plane determinism: two runs of the same seeded
//! [`FaultPlan`] over the same kernel + CARAT workload must produce
//! bit-identical injection traces, recovery counts, and simulated clocks.
//!
//! This is the property that makes fault-injection campaigns debuggable:
//! any failure a campaign finds can be replayed exactly from its seed.

use interweave::carat::defrag::fragmentation_demo;
use interweave::carat::pik::PikSystem;
use interweave::carat::quarantine_and_relocate;
use interweave::core::machine::MachineConfig;
use interweave::core::{Cycles, FaultConfig, FaultPlan, FaultRecord};
use interweave::ir::interp::ExecStatus;
use interweave::ir::types::Val;
use interweave::kernel::work::LoopWork;
use interweave::kernel::{Executor, NumaAllocator};
use proptest::prelude::*;

/// Everything observable about one campaign run. Two same-seed runs must
/// compare equal on all of it.
#[derive(Debug, Clone, PartialEq)]
struct CampaignOutcome {
    trace: Vec<FaultRecord>,
    total_injected: u64,
    completed: bool,
    makespan: Cycles,
    lost_kicks: u64,
    delayed_kicks: u64,
    recovered_stalls: u64,
    stall_cycles: Cycles,
    shed_tasks: u64,
    corruptions: usize,
    repaired_words: usize,
    relocations: usize,
    final_status: String,
}

/// One full cross-layer campaign: a watchdog-guarded executor with
/// fault-injected kicks and stack allocations, then a CARAT process whose
/// escape ledger is hit with a seeded bit-flip and healed by
/// quarantine-and-relocate. A single plan spans both layers, so the trace
/// interleaves classes exactly as the layers consulted it.
fn run_campaign(cfg: FaultConfig) -> CampaignOutcome {
    // Kernel layer.
    let mc = MachineConfig::xeon_server_2s();
    let mut e = Executor::new(mc.clone(), Cycles(5_000));
    e.set_stack_allocator(NumaAllocator::new(mc.sockets, 14, 4));
    e.set_fault_plan(FaultPlan::new(cfg));
    e.enable_watchdog(Cycles(2_500));
    let mut shed = 0u64;
    for i in 0..16 {
        if e.try_spawn(i % 4, Box::new(LoopWork::new(20, Cycles(300))))
            .is_err()
        {
            shed += 1;
        }
    }
    // With extreme drop rates the watchdog may legitimately give up on a
    // CPU (bounded re-kicks); determinism, not success, is the property.
    let completed = e.run();
    let mut plan = e.take_fault_plan().expect("plan installed above");
    assert_eq!(e.stats.shed_tasks, shed);

    // CARAT layer, continuing the same plan.
    let (m, entry) = fragmentation_demo("list");
    let mut sys = PikSystem::new();
    let (m, att) = sys.compile(m);
    let pid = sys
        .admit(m, att, entry, vec![Val::I(48)])
        .expect("attested module admits");
    loop {
        match sys.processes[pid].run_slice(100_000) {
            ExecStatus::Yielded => break,
            ExecStatus::OutOfFuel => continue,
            other => panic!("unexpected status before quiesce: {other:?}"),
        }
    }
    let p = &mut sys.processes[pid];
    let holders = p.runtime.escape_holders();
    if let Some((site, bit)) = plan.flip_spec(holders.len() as u64) {
        p.interp
            .mem
            .flip_bit(holders[site as usize], bit)
            .expect("escape holders are integer words");
    }
    let corruptions = p.runtime.audit_escapes(&p.interp.mem);
    let report = quarantine_and_relocate(&mut p.interp, &mut p.runtime, &corruptions);
    let final_status = format!("{:?}", sys.processes[pid].run_slice(u64::MAX / 4));

    CampaignOutcome {
        trace: plan.trace().to_vec(),
        total_injected: plan.total_injected(),
        completed,
        makespan: e.stats.makespan,
        lost_kicks: e.stats.lost_kicks,
        delayed_kicks: e.stats.delayed_kicks,
        recovered_stalls: e.stats.recovered_stalls,
        stall_cycles: e.stats.stall_cycles,
        shed_tasks: e.stats.shed_tasks,
        corruptions: corruptions.len(),
        repaired_words: report.repaired_words,
        relocations: report.relocations,
        final_status,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed, same rates ⇒ identical trace and recovery story,
    /// end to end across both layers.
    #[test]
    fn same_seed_replays_bit_identically(
        seed in any::<u64>(),
        drop_pct in 0u32..=40,
        delay_pct in 0u32..=40,
        alloc_pct in 0u32..=40,
        flip_pct in 0u32..=100,
    ) {
        let cfg = FaultConfig {
            drop_ipi: drop_pct as f64 / 100.0,
            delay_ipi: delay_pct as f64 / 100.0,
            alloc_fail: alloc_pct as f64 / 100.0,
            bit_flip: flip_pct as f64 / 100.0,
            ..FaultConfig::quiet(seed)
        };
        let a = run_campaign(cfg);
        let b = run_campaign(cfg);
        prop_assert_eq!(&a, &b);
        // Injection bookkeeping is internally consistent.
        prop_assert_eq!(a.trace.len() as u64, a.total_injected);
        // A corrupted run must always be fully repaired before resuming.
        prop_assert_eq!(a.corruptions, a.repaired_words);
        // The workload always reaches a terminal state (fault plans never
        // wedge the simulation).
        prop_assert!(a.final_status.starts_with("Done"));
    }

    /// A quiet plan is not just "no injections": it consumes zero RNG draws
    /// and leaves every recovery counter at zero, so wiring the fault plane
    /// through a simulation cannot perturb fault-free results.
    #[test]
    fn quiet_plans_never_perturb(seed in any::<u64>()) {
        let quiet = run_campaign(FaultConfig::quiet(seed));
        prop_assert!(quiet.trace.is_empty());
        prop_assert_eq!(quiet.total_injected, 0);
        prop_assert!(quiet.completed);
        prop_assert_eq!(quiet.lost_kicks, 0);
        prop_assert_eq!(quiet.recovered_stalls, 0);
        prop_assert_eq!(quiet.shed_tasks, 0);
        prop_assert_eq!(quiet.corruptions, 0);
        // And it is seed-independent: the simulation result is the same
        // no matter what seed the disarmed plan carries.
        let other = run_campaign(FaultConfig::quiet(seed.wrapping_add(1)));
        prop_assert_eq!(quiet, other);
    }
}
