//! Integration: the interweaving passes compose on one module.
//!
//! Figure 1's compile-time story is a *single* toolchain applying multiple
//! interweaving transformations to the same code. This test stacks CARAT
//! instrumentation, timing injection, and device-poll injection on one
//! program, runs it under hooks that implement all three runtimes at once,
//! and checks that (a) the program's result is unchanged, (b) every
//! mechanism actually fired.

use interweave::blend::polling::InjectPolling;
use interweave::carat::runtime::CaratRuntime;
use interweave::fibers::timing_pass::InjectTiming;
use interweave::ir::interp::{
    ExecStatus, HookAction, Interp, InterpConfig, Memory, NullHooks, RuntimeHooks, Trap,
};
use interweave::ir::passes::Pass;
use interweave::ir::programs;
use interweave::ir::types::Val;
use interweave::ir::verify::assert_valid;
use interweave::ir::Intrinsic;

/// A combined runtime: CARAT for guards/tracking, a quantum clock for time
/// checks, an event counter for polls.
struct CombinedRuntime {
    carat: CaratRuntime,
    quantum: u64,
    last_yield: u64,
    time_checks: u64,
    yields: u64,
    polls: u64,
}

impl RuntimeHooks for CombinedRuntime {
    fn intrinsic(
        &mut self,
        which: Intrinsic,
        args: &[Val],
        mem: &mut Memory,
        now: u64,
    ) -> HookAction {
        match which {
            Intrinsic::TimeCheck => {
                self.time_checks += 1;
                if now.saturating_sub(self.last_yield) >= self.quantum {
                    self.last_yield = now;
                    self.yields += 1;
                    HookAction::Yield { cycles: 2 }
                } else {
                    HookAction::Continue {
                        value: None,
                        cycles: 2,
                    }
                }
            }
            Intrinsic::PollDevices => {
                self.polls += 1;
                HookAction::Continue {
                    value: None,
                    cycles: 3,
                }
            }
            other => self.carat.intrinsic(other, args, mem, now),
        }
    }

    fn check_access(&mut self, addr: u64, write: bool, now: u64) -> Result<u64, Trap> {
        self.carat.check_access(addr, write, now)
    }

    fn on_alloc(&mut self, a: interweave::ir::interp::Allocation) {
        self.carat.on_alloc(a);
    }

    fn on_free(&mut self, a: interweave::ir::interp::Allocation) {
        self.carat.on_free(a);
    }
}

#[test]
fn three_interweaving_passes_compose_on_one_module() {
    for prog in programs::suite(1) {
        // Reference result.
        let mut base = Interp::new(InterpConfig::default());
        base.start(&prog.module, prog.entry, &prog.args);
        let expected = base.run_to_completion(&prog.module, &mut NullHooks);

        // Stack all three instrumentations.
        let mut m = prog.module.clone();
        interweave::carat::instrument(&mut m, true);
        InjectTiming::default().run(&mut m);
        InjectPolling::default().run(&mut m);
        assert_valid(&m);

        let mut rt = CombinedRuntime {
            carat: CaratRuntime::new(),
            quantum: 4_000,
            last_yield: 0,
            time_checks: 0,
            yields: 0,
            polls: 0,
        };
        let mut it = Interp::new(InterpConfig::default());
        it.start(&m, prog.entry, &prog.args);
        let result;
        loop {
            match it.run(&m, &mut rt, u64::MAX / 4) {
                ExecStatus::Done(v) => {
                    result = v;
                    break;
                }
                ExecStatus::Yielded => continue, // a fiber switch point
                other => panic!("{}: unexpected {other:?}", prog.name),
            }
        }
        assert_eq!(result, expected, "{}: result changed", prog.name);
        assert!(rt.time_checks > 0, "{}: no time checks ran", prog.name);
        assert!(rt.polls > 0, "{}: no polls ran", prog.name);
        // Memory-free kernels (fib, nqueens) legitimately have no guards.
        if !["fib", "nqueens"].contains(&prog.name.as_str()) {
            assert!(
                rt.carat.stats.guards + rt.carat.stats.range_guards > 0,
                "{}: no guards ran",
                prog.name
            );
        }
        assert_eq!(rt.carat.stats.faults, 0, "{}", prog.name);
    }
}

#[test]
fn combined_instrumentation_still_catches_protection_bugs() {
    // A buggy program under the full pipeline: the CARAT guard must fault
    // before the wild access, with the other instrumentation present.
    use interweave::ir::{BinOp, FunctionBuilder, Module};
    let mut m = Module::new();
    let mut fb = FunctionBuilder::new("buggy", 1);
    let p = fb.param(0);
    let big = fb.const_i(1 << 40);
    let q = fb.bin(BinOp::Add, p, big); // out-of-bounds pointer arithmetic
    let _v = fb.load(q, 0);
    fb.ret(None);
    m.add(fb.finish());
    interweave::carat::instrument(&mut m, true);
    InjectTiming::default().run(&mut m);
    assert_valid(&m);

    let mut rt = CombinedRuntime {
        carat: CaratRuntime::new(),
        quantum: 1_000_000,
        last_yield: 0,
        time_checks: 0,
        yields: 0,
        polls: 0,
    };
    let mut it = Interp::new(InterpConfig::default());
    let alloc = it.mem.alloc(64).unwrap();
    rt.carat.on_alloc(alloc);
    it.start(&m, interweave::ir::FuncId(0), &[Val::I(alloc.base as i64)]);
    match it.run(&m, &mut rt, u64::MAX / 4) {
        ExecStatus::Trapped(Trap::ProtectionFault { .. }) => {}
        other => panic!("expected a guard fault, got {other:?}"),
    }
    assert_eq!(it.stats.loads, 0, "the access must not have executed");
}
