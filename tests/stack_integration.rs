//! Cross-crate integration: every interweaving example from the paper,
//! exercised through the facade crate on a common machine, with the
//! comparative claims asserted jointly.

use interweave::core::machine::MachineConfig;
use interweave::core::stack::StackConfig;
use interweave::core::Cycles;

/// The paper's thesis in one test: on every axis the workspace models, the
/// interwoven design beats the commodity layered design on its headline
/// metric.
#[test]
fn interweaving_wins_on_every_axis() {
    // §IV-B heartbeat: achieved rate fraction at ♥=20 µs.
    use interweave::core::stack::OsPoint;
    use interweave::heartbeat::sim::{run_heartbeat, HeartbeatConfig};
    let lx = run_heartbeat(&HeartbeatConfig::fig3(
        OsPoint::LinuxLike,
        20.0,
        Cycles(1000),
    ));
    let nk = run_heartbeat(&HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1000)));
    assert!(nk.fraction_of_target() > lx.fraction_of_target());

    // §IV-C preemption granularity.
    use interweave::kernel::threads::{switch_cost, SwitchKind};
    let knl = MachineConfig::phi_knl();
    let thread = switch_cost(
        &knl,
        OsPoint::LinuxLike,
        SwitchKind::ThreadInterrupt,
        false,
        true,
    )
    .total();
    let fiber = switch_cost(
        &knl,
        OsPoint::NkLike,
        SwitchKind::FiberCompilerTimed,
        false,
        true,
    )
    .total();
    assert!(fiber < thread);

    // §IV-A translation overhead: optimized CARAT below paging.
    use interweave::carat::overhead::measure;
    use interweave::ir::programs;
    let row = measure(&programs::matvec(16), 64, 4096);
    assert!(row.opt_cycles < row.paging_cycles);

    // §V-A OpenMP: RTK above Linux at scale.
    use interweave::omp::nas::bt;
    use interweave::omp::sim::run_omp;
    use interweave::omp::OmpMode;
    let lx_t = run_omp(&bt(), OmpMode::LinuxUser, 32, &knl, 1).total;
    let rtk_t = run_omp(&bt(), OmpMode::Rtk, 32, &knl, 1).total;
    assert!(rtk_t < lx_t);

    // §V-B coherence: selective beats full MESI.
    use interweave::coherence::experiment::run_one;
    use interweave::coherence::protocol::CohMode;
    use interweave::coherence::workloads::fig7_mixes;
    let mix = &fig7_mixes()[0];
    let (full, full_e) = run_one(mix, 8, CohMode::Full, 5);
    let (sel, sel_e) = run_one(mix, 8, CohMode::Selective, 5);
    assert!(sel < full);
    assert!(sel_e < full_e);

    // §IV-D isolation: virtine below process start-up.
    use interweave::virtines::wasp::{startup, LaunchPath};
    assert!(
        startup(LaunchPath::VirtineCold).total().get() < startup(LaunchPath::Process).total().get()
    );

    // §V-C blending: polled devices with zero interrupts.
    use interweave::blend::polling::{run_device_experiment, DeviceConfig, DriveMode};
    let mc = MachineConfig::xeon_server_2s();
    let r = run_device_experiment(
        &programs::stencil1d(64, 8),
        &DeviceConfig {
            mean_gap: 4_000,
            handler: 200,
            seed: 3,
        },
        &mc,
        DriveMode::BlendedPolling,
    );
    assert_eq!(r.interrupts, 0);
    assert!(r.serviced > 0);
}

/// The §V-D hardware extension helps every interrupt consumer at once: the
/// same `MachineConfig` flows into kernels, heartbeat, and switch costs.
#[test]
fn pipeline_interrupts_propagate_through_the_whole_stack() {
    use interweave::core::stack::OsPoint;
    use interweave::heartbeat::sim::{run_heartbeat, HeartbeatConfig};
    use interweave::kernel::os::{NkModel, OsModel};
    use interweave::kernel::threads::{switch_cost, SwitchKind};

    let idt = MachineConfig::xeon_server_2s();
    let pipe = MachineConfig::xeon_server_2s().with_pipeline_interrupts();

    // Kernel primitive.
    let nk_idt = NkModel::new(idt.clone());
    let nk_pipe = NkModel::new(pipe.clone());
    assert!(nk_pipe.event_deliver() < nk_idt.event_deliver());

    // Thread switches.
    let s_idt = switch_cost(
        &idt,
        OsPoint::NkLike,
        SwitchKind::ThreadInterrupt,
        false,
        false,
    )
    .total();
    let s_pipe = switch_cost(
        &pipe,
        OsPoint::NkLike,
        SwitchKind::ThreadInterrupt,
        false,
        false,
    )
    .total();
    assert!(s_pipe < s_idt);

    // Heartbeat overhead.
    let mut cfg = HeartbeatConfig::fig3(OsPoint::NkLike, 20.0, Cycles(1000));
    let h_idt = run_heartbeat(&cfg);
    cfg.machine = pipe;
    let h_pipe = run_heartbeat(&cfg);
    assert!(h_pipe.overhead_pct < h_idt.overhead_pct);
}

/// The stack-composition vocabulary stays consistent with what the crates
/// implement: each interwoven axis corresponds to a working subsystem.
#[test]
fn stack_config_axes_are_all_implemented() {
    let iw = StackConfig::interwoven();
    assert_eq!(iw.interweaving_degree(), 5);
    // One subsystem per axis has been exercised in the test above; here we
    // spot-check the remaining combination helpers.
    let nautilus = StackConfig::nautilus();
    assert!(nautilus.interweaving_degree() >= 2);
    assert_eq!(
        StackConfig::commodity().interweaving_degree(),
        0,
        "commodity must be the origin of the design space"
    );
}
