//! Quickstart: a tour of the Interweave laboratory.
//!
//! Builds the stack compositions the paper contrasts (commodity layered
//! vs. interwoven, plus the Aster-like framekernel mid-point of the OS
//! axis), then demonstrates one win from each layer: CARAT protection
//! without paging, compiler-timed preemption without interrupts, and
//! heartbeat delivery without signals — swept across all three kernels.
//!
//! Run with: `cargo run --example quickstart`

use interweave::carat;
use interweave::compose::{compose, StackBuilder};
use interweave::core::machine::MachineConfig;
use interweave::core::stack::{OsPoint, StackConfig, Translation};
use interweave::core::Cycles;
use interweave::fibers::study::floor_cycles;
use interweave::heartbeat::sim::{run_heartbeat, HeartbeatConfig};
use interweave::ir::interp::{Interp, InterpConfig};
use interweave::ir::programs;
use interweave::kernel::threads::SwitchKind;

fn main() {
    // 1. The design space: the paper's interweaving axes as data, and the
    // builder that turns a point in that space into a composed stack.
    let commodity = StackConfig::commodity();
    let interwoven = StackConfig::interwoven();
    println!("commodity stack:  {commodity}");
    println!("interwoven stack: {interwoven}");
    println!(
        "interweaving degree: {} -> {}",
        commodity.interweaving_degree(),
        interwoven.interweaving_degree()
    );
    let machine = MachineConfig::xeon_server_2s();
    let stack = StackBuilder::new(interwoven, machine.clone())
        .build()
        .expect("the interwoven preset is a coherent stack");
    println!(
        "composed: os={}, translation={}, delivery={:?}",
        stack.os.name(),
        stack.translation.name(),
        stack.delivery
    );
    // The OS axis has a mid-point: the Aster-like framekernel composes
    // like any other stack point.
    let fk = StackBuilder::new(StackConfig::framekernel(), machine.clone())
        .build()
        .expect("the framekernel preset is a coherent stack");
    println!("framekernel:      os={}", fk.os.name());
    // Incoherent combinations come back as typed errors, not panics:
    // CARAT's guards need the NK kernel side, so it can't ride on signals.
    let bad = StackConfig {
        translation: Translation::Carat,
        ..StackConfig::commodity()
    };
    match compose(bad, machine.clone()) {
        Err(e) => println!("rejected [{}]: {e}", e.rule()),
        Ok(_) => unreachable!("carat-on-commodity must not compose"),
    }
    // The framekernel premise is enforced in the same way: Aster's
    // isolation lives in checked in-kernel types, so raw identity mapping
    // is incoherent with it.
    let bad_fk = StackConfig {
        translation: Translation::Identity,
        ..StackConfig::framekernel()
    };
    match compose(bad_fk, machine) {
        Err(e) => println!("rejected [{}]: {e}\n", e.rule()),
        Ok(_) => unreachable!("aster-without-paging must not compose"),
    }

    // 2. CARAT (§IV-A): protection by compiler + runtime, no paging.
    let prog = programs::stream_triad(128);
    let mut guarded = prog.module.clone();
    let pass_stats = carat::instrument(&mut guarded, true);
    println!("CARAT pipeline on `{}`:", prog.name);
    for (pass, stats) in &pass_stats {
        println!("  {pass}: {:?}", stats.counters);
    }
    let mut rt = carat::CaratRuntime::new();
    let mut it = Interp::new(InterpConfig::default());
    it.start(&guarded, prog.entry, &prog.args);
    let result = it.run_to_completion(&guarded, &mut rt);
    println!(
        "  guarded run: result {result:?}, {} object guards + {} range guards executed, 0 faults\n",
        rt.stats.guards, rt.stats.range_guards
    );

    // 3. Compiler-based timing (§IV-C): fine-grain preemption without
    // interrupts.
    let knl = MachineConfig::phi_knl();
    let hw = floor_cycles(&knl, SwitchKind::ThreadInterrupt, OsPoint::LinuxLike, true);
    let ct = floor_cycles(&knl, SwitchKind::FiberCompilerTimed, OsPoint::NkLike, false);
    println!("preemption granularity floor on {}:", knl.name);
    println!("  Linux threads (FP):        {hw} cycles");
    println!(
        "  compiler-timed fibers:     {ct} cycles  ({:.1}x finer)\n",
        hw as f64 / ct as f64
    );

    // 4. Heartbeat delivery (§IV-B): the whole OS axis at heartbeat =
    // 20 µs — per-CPU signals on Linux, kernel-owned broadcast on the
    // framekernel and Nautilus.
    for os in OsPoint::ALL {
        let r = run_heartbeat(&HeartbeatConfig::fig3(os, 20.0, Cycles(1000)));
        println!(
            "heartbeat 20 µs via {:>8}: {:5.1}% of target rate, CV {:.3}, overhead {:.2}%",
            os.name(),
            100.0 * r.fraction_of_target(),
            r.interbeat_cv,
            r.overhead_pct
        );
    }
    println!(
        "\nNext: `cargo run -p interweave-bench --bin fig3_heartbeat` (and fig4/fig6/fig7/tab_*)"
    );
}
