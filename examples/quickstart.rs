//! Quickstart: a tour of the Interweave laboratory.
//!
//! Builds the two stack compositions the paper contrasts (commodity layered
//! vs. interwoven), then demonstrates one win from each layer: CARAT
//! protection without paging, compiler-timed preemption without interrupts,
//! and heartbeat delivery without signals.
//!
//! Run with: `cargo run --example quickstart`

use interweave::carat;
use interweave::compose::{compose, StackBuilder};
use interweave::core::machine::MachineConfig;
use interweave::core::stack::{StackConfig, Translation};
use interweave::core::Cycles;
use interweave::fibers::study::floor_cycles;
use interweave::heartbeat::sim::{run_heartbeat, HeartbeatConfig, SignalKind};
use interweave::ir::interp::{Interp, InterpConfig};
use interweave::ir::programs;
use interweave::kernel::threads::{OsKind, SwitchKind};

fn main() {
    // 1. The design space: the paper's interweaving axes as data, and the
    // builder that turns a point in that space into a composed stack.
    let commodity = StackConfig::commodity();
    let interwoven = StackConfig::interwoven();
    println!("commodity stack:  {commodity}");
    println!("interwoven stack: {interwoven}");
    println!(
        "interweaving degree: {} -> {}",
        commodity.interweaving_degree(),
        interwoven.interweaving_degree()
    );
    let machine = MachineConfig::xeon_server_2s();
    let stack = StackBuilder::new(interwoven, machine.clone())
        .build()
        .expect("the interwoven preset is a coherent stack");
    println!(
        "composed: os={}, translation={}, delivery={:?}",
        stack.os.name(),
        stack.translation.name(),
        stack.delivery
    );
    // Incoherent combinations come back as typed errors, not panics:
    // CARAT's guards need the NK kernel side, so it can't ride on signals.
    let bad = StackConfig {
        translation: Translation::Carat,
        ..StackConfig::commodity()
    };
    match compose(bad, machine) {
        Err(e) => println!("rejected [{}]: {e}\n", e.rule()),
        Ok(_) => unreachable!("carat-on-commodity must not compose"),
    }

    // 2. CARAT (§IV-A): protection by compiler + runtime, no paging.
    let prog = programs::stream_triad(128);
    let mut guarded = prog.module.clone();
    let pass_stats = carat::instrument(&mut guarded, true);
    println!("CARAT pipeline on `{}`:", prog.name);
    for (pass, stats) in &pass_stats {
        println!("  {pass}: {:?}", stats.counters);
    }
    let mut rt = carat::CaratRuntime::new();
    let mut it = Interp::new(InterpConfig::default());
    it.start(&guarded, prog.entry, &prog.args);
    let result = it.run_to_completion(&guarded, &mut rt);
    println!(
        "  guarded run: result {result:?}, {} object guards + {} range guards executed, 0 faults\n",
        rt.stats.guards, rt.stats.range_guards
    );

    // 3. Compiler-based timing (§IV-C): fine-grain preemption without
    // interrupts.
    let knl = MachineConfig::phi_knl();
    let hw = floor_cycles(&knl, SwitchKind::ThreadInterrupt, OsKind::Linux, true);
    let ct = floor_cycles(&knl, SwitchKind::FiberCompilerTimed, OsKind::Nk, false);
    println!("preemption granularity floor on {}:", knl.name);
    println!("  Linux threads (FP):        {hw} cycles");
    println!(
        "  compiler-timed fibers:     {ct} cycles  ({:.1}x finer)\n",
        hw as f64 / ct as f64
    );

    // 4. Heartbeat delivery (§IV-B): signals vs. IPIs at heartbeat = 20 µs.
    for kind in [SignalKind::LinuxSignals, SignalKind::NkIpi] {
        let r = run_heartbeat(&HeartbeatConfig::fig3(kind, 20.0, Cycles(1000)));
        println!(
            "heartbeat 20 µs via {:>8}: {:5.1}% of target rate, CV {:.3}, overhead {:.2}%",
            kind.name(),
            100.0 * r.fraction_of_target(),
            r.interbeat_cv,
            r.overhead_pct
        );
    }
    println!(
        "\nNext: `cargo run -p interweave-bench --bin fig3_heartbeat` (and fig4/fig6/fig7/tab_*)"
    );
}
