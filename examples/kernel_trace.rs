//! Kernel-trace example: run a small preemptive workload on the executor
//! and export a Chrome trace (`chrome://tracing` / https://ui.perfetto.dev).
//!
//! Run with: `cargo run --example kernel_trace` — writes `trace.json` in the
//! working directory.

use interweave::core::machine::MachineConfig;
use interweave::core::Cycles;
use interweave::kernel::executor::Executor;
use interweave::kernel::trace::{chrome_trace_json, find_overlap};
use interweave::kernel::work::{LoopWork, ScriptedWork, WorkStep};

fn main() {
    let mc = MachineConfig::xeon_server_2s().with_cores(4);
    let mhz = mc.freq.mhz;
    let mut e = Executor::new(mc, Cycles(20_000));
    e.enable_tracing();

    // A mixed workload: compute-bound tasks, a cooperative yielder, and a
    // fork/join pair.
    for cpu in 0..3 {
        e.spawn(cpu, Box::new(LoopWork::new(6, Cycles(30_000))));
    }
    let yielder_steps: Vec<WorkStep> = (0..8)
        .flat_map(|_| [WorkStep::Compute(Cycles(10_000)), WorkStep::Yield])
        .chain([WorkStep::Done])
        .collect();
    e.spawn(1, Box::new(ScriptedWork::new(yielder_steps)));
    let child = e.spawn(3, Box::new(LoopWork::new(4, Cycles(25_000))));
    e.spawn(
        0,
        Box::new(ScriptedWork::new(vec![
            WorkStep::Compute(Cycles(5_000)),
            WorkStep::Block(child),
            WorkStep::Compute(Cycles(15_000)),
            WorkStep::Done,
        ])),
    );

    let all_done = e.run();
    assert!(all_done, "workload must quiesce");
    assert!(
        find_overlap(&e.trace).is_none(),
        "trace must be well-formed"
    );

    println!(
        "ran {} tasks: makespan {} ({}), {} preemptions, {} yields, {} blocks",
        e.stats.task_executed.len(),
        e.stats.makespan,
        interweave::core::machine::MachineConfig::xeon_server_2s()
            .freq
            .us(e.stats.makespan),
        e.stats.preemptions,
        e.stats.yields,
        e.stats.blocks
    );

    let json = chrome_trace_json(&e.trace, mhz);
    std::fs::write("trace.json", &json).expect("writable cwd");
    println!(
        "wrote trace.json ({} events) — open it in chrome://tracing or https://ui.perfetto.dev",
        e.trace.len()
    );
}
