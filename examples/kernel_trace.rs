//! Kernel-trace example: run a small preemptive workload on the executor
//! and export a cross-layer Chrome trace (`chrome://tracing` /
//! https://ui.perfetto.dev).
//!
//! Run with: `cargo run --example kernel_trace` — writes
//! `target/trace.json` (never the repo root, so the artifact stays out of
//! version control).

use interweave::core::machine::MachineConfig;
use interweave::core::telemetry::{chrome_trace_json, find_overlap, Level, Sink};
use interweave::core::Cycles;
use interweave::kernel::executor::Executor;
use interweave::kernel::work::{LoopWork, ScriptedWork, WorkStep};

fn main() {
    let mc = MachineConfig::xeon_server_2s().with_cores(4);
    let mhz = mc.freq.mhz;
    let mut e = Executor::new(mc, Cycles(20_000));
    let sink = Sink::on(Level::Full);
    e.set_telemetry(sink.clone());
    e.enable_tracing();

    // A mixed workload: compute-bound tasks, a cooperative yielder, and a
    // fork/join pair.
    for cpu in 0..3 {
        e.spawn(cpu, Box::new(LoopWork::new(6, Cycles(30_000))));
    }
    let yielder_steps: Vec<WorkStep> = (0..8)
        .flat_map(|_| [WorkStep::Compute(Cycles(10_000)), WorkStep::Yield])
        .chain([WorkStep::Done])
        .collect();
    e.spawn(1, Box::new(ScriptedWork::new(yielder_steps)));
    let child = e.spawn(3, Box::new(LoopWork::new(4, Cycles(25_000))));
    e.spawn(
        0,
        Box::new(ScriptedWork::new(vec![
            WorkStep::Compute(Cycles(5_000)),
            WorkStep::Block(child),
            WorkStep::Compute(Cycles(15_000)),
            WorkStep::Done,
        ])),
    );

    let all_done = e.run();
    assert!(all_done, "workload must quiesce");
    assert!(
        find_overlap(&e.trace).is_none(),
        "trace must be well-formed"
    );
    sink.verify_attribution(e.attribution_clock())
        .expect("every cycle attributed");

    println!(
        "ran {} tasks: makespan {} ({}), {} preemptions, {} yields, {} blocks",
        e.stats.task_executed.len(),
        e.stats.makespan,
        interweave::core::machine::MachineConfig::xeon_server_2s()
            .freq
            .us(e.stats.makespan),
        e.stats.preemptions,
        e.stats.yields,
        e.stats.blocks
    );
    println!("cycle attribution (sums exactly to makespan × CPUs):");
    for row in sink.attribution_rows() {
        println!(
            "  {:>10} / {:<16} {:>12}",
            row.layer, row.mechanism, row.cycles
        );
    }

    let spans = sink.spans();
    let json = chrome_trace_json(&spans, mhz);
    let out = std::path::Path::new("target");
    std::fs::create_dir_all(out).expect("create target/");
    let path = out.join("trace.json");
    std::fs::write(&path, &json).expect("writable target/");
    println!(
        "wrote {} ({} spans) — open it in chrome://tracing or https://ui.perfetto.dev",
        path.display(),
        spans.len()
    );
}
