//! Serverless scenario (§IV-D): a FaaS worker choosing an isolation
//! mechanism for short function invocations.
//!
//! A stream of requests invokes a small function (Fig. 5's fib). The
//! example compares the end-to-end latency of running it in a process, a
//! cold virtine, and a Wasp-pooled virtine, then shows §V-E's bespoke
//! synthesis shaving the context down to what the code actually needs.
//!
//! Run with: `cargo run --example serverless_functions`

use interweave::core::machine::MachineConfig;
use interweave::core::Cycles;
use interweave::ir::programs;
use interweave::ir::types::Val;
use interweave::virtines::bespoke::synthesize;
use interweave::virtines::extract::extract_one;
use interweave::virtines::wasp::{startup, LaunchPath, Wasp};

fn main() {
    let mc = MachineConfig::xeon_server_2s();
    let fib = programs::fib(18);
    let image = extract_one(&fib.module, fib.entry);
    println!(
        "function image: `{}`, {} functions, {} instructions",
        image.name,
        image.module.funcs.len(),
        image.module.inst_count()
    );

    // What would each isolation mechanism cost just to *start*?
    println!("\nstart-up latency by isolation mechanism:");
    let spec = synthesize(&image.module);
    for path in [
        LaunchPath::Process,
        LaunchPath::Container,
        LaunchPath::FullVm,
        LaunchPath::VirtineCold,
        LaunchPath::VirtineSnapshot,
        LaunchPath::Bespoke(spec),
    ] {
        println!("  {:22} {}", path.name(), startup(path).total());
    }

    // Bespoke synthesis: the compiler knows fib needs almost nothing.
    println!(
        "\nbespoke synthesis for `{}`: fp={} heap={} io={} long_mode={}",
        image.name, spec.needs_fp, spec.needs_heap, spec.needs_io, spec.needs_long_mode
    );

    // Serve a burst of requests through the Wasp pool.
    let mut wasp = Wasp::new(image, mc.clone());
    wasp.prewarm(2);
    let mut total = Cycles::ZERO;
    let mut worst = Cycles::ZERO;
    let n_requests = 20;
    for i in 0..n_requests {
        let arg = 10 + (i % 8) as i64;
        let (outcome, latency) = wasp.invoke(&[Val::I(arg)], u64::MAX / 4);
        total += latency;
        worst = worst.max(latency);
        if i < 3 {
            println!(
                "request {i}: fib({arg}) -> {outcome:?} in {}",
                mc.freq.us(latency)
            );
        }
    }
    println!(
        "\nserved {n_requests} requests: mean {}, worst {}, pool: {} cold starts / {} reuses",
        mc.freq.us(total / n_requests as u64),
        mc.freq.us(worst),
        wasp.stats.cold_starts,
        wasp.stats.reuses
    );
    println!("(compare: one *container* start costs {})", {
        startup(LaunchPath::Container).total()
    });
}
