//! Coherence lab (§V-B): drive the protocol simulator by hand and watch
//! selective deactivation change the traffic.
//!
//! Walks through the three region classes with a producer/consumer pair,
//! printing the protocol events (forwards, invalidations, directory
//! lookups) and energy each policy generates — then the fence-selectivity
//! companion.
//!
//! Run with: `cargo run --example coherence_lab`

use interweave::coherence::ordering::{run_ordering, FencePolicy, OrderingConfig};
use interweave::coherence::protocol::{Class, CohMode, System, SystemConfig};

fn scenario(mode: CohMode) {
    let mut sys = System::new(SystemConfig::test(4, mode));
    // Region plan: producer-private scratch, a read-only table, one shared
    // mailbox line.
    sys.classify(0..64, Class::Private(0)); // core 0's scratch
    sys.classify(100..164, Class::ReadOnly); // lookup table
                                             // line 200: shared mailbox (default class).

    // Build the read-only table (before freezing it would be classified —
    // in Full mode classification is ignored anyway).
    let mut cycles = 0u64;

    // Phase 1: core 0 computes in its scratch (hot loop).
    for rep in 0..4 {
        for l in 0..64 {
            cycles += sys.write(0, l);
            cycles += sys.read(0, l);
        }
        let _ = rep;
    }
    // Phase 2: everyone reads the table.
    for core in 0..4 {
        for l in 100..164 {
            cycles += sys.read(core, l);
        }
    }
    // Phase 3: producer/consumer through the mailbox.
    for round in 0..32 {
        cycles += sys.write(0, 200);
        cycles += sys.read(1, 200);
        let _ = round;
    }
    sys.check_swmr();

    println!(
        "{:>9}: {:>7} cycles | dir lookups {:>5} | forwards {:>3} | invalidations {:>3} | NoC {:>8.0} pJ",
        match mode {
            CohMode::Full => "full MESI",
            CohMode::Selective => "selective",
        },
        cycles,
        sys.stats.dir_lookups,
        sys.stats.forwards,
        sys.stats.invalidations,
        sys.energy.interconnect.get(),
    );
}

fn main() {
    println!("producer/consumer scenario, 4 cores (scratch + table + mailbox):\n");
    scenario(CohMode::Full);
    scenario(CohMode::Selective);
    println!(
        "\nSelective deactivation removes the directory from private and read-only\n\
         traffic entirely; only the mailbox still runs the protocol (§V-B).\n"
    );

    // The ordering companion: what the fence no longer waits for.
    println!("release-fence stall per publication (4 related + N unrelated stores):");
    for unrelated in [0usize, 8, 24, 48] {
        let cfg = OrderingConfig {
            unrelated_writes: unrelated,
            ..OrderingConfig::default()
        };
        let tso = run_ordering(&cfg, FencePolicy::TsoTotal);
        let sel = run_ordering(&cfg, FencePolicy::SelectiveRelease);
        println!(
            "  {unrelated:>2} unrelated: TSO {:>6.1} cyc  selective {:>5.1} cyc",
            tso.mean_stall, sel.mean_stall
        );
    }
    println!(
        "\n\"A fence orders writes that produce data before setting the done flag,\n\
         but it also orders all other writes the thread issued\" — not anymore."
    );
}
