//! HPC scenario (§V-A): choosing an execution design for an iterative
//! OpenMP solver on a many-core node.
//!
//! Runs a NAS-BT-shaped workload across all four execution designs and CPU
//! counts on the KNL preset, then prints where each design pays its cycles
//! (noise, runtime machinery) — the evidence behind Fig. 6's shape.
//!
//! Run with: `cargo run --example hpc_solver`

use interweave::core::machine::MachineConfig;
use interweave::omp::nas::bt;
use interweave::omp::sim::run_omp;
use interweave::omp::OmpMode;

fn main() {
    let mc = MachineConfig::phi_knl();
    let spec = bt();
    println!(
        "workload: NAS {} shape — {} steps x {} regions of {}\n",
        spec.name, spec.iters, spec.regions_per_iter, spec.work_per_region
    );

    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "CPUs", "Linux", "RTK", "PIK", "CCK"
    );
    for p in [1usize, 4, 16, 64] {
        let t = |m| run_omp(&spec, m, p, &mc, 42).total.get();
        let linux = t(OmpMode::LinuxUser);
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12}   (RTK {:.2}x)",
            p,
            linux,
            t(OmpMode::Rtk),
            t(OmpMode::Pik),
            t(OmpMode::Cck),
            linux as f64 / t(OmpMode::Rtk) as f64
        );
    }

    // Where do Linux's cycles go at scale?
    println!("\ncycle breakdown at 64 CPUs:");
    for mode in OmpMode::all() {
        let r = run_omp(&spec, mode, 64, &mc, 42);
        println!(
            "  {:6} total {:>12}  runtime-overhead {:>11}  noise-on-critical-path {:>10}",
            mode.name(),
            r.total.get(),
            r.runtime_overhead.get(),
            r.noise_on_critical_path.get()
        );
    }
    println!(
        "\nThe kernel designs win because barriers amplify noise: one late worker\n\
         delays everyone, and the chance someone is late grows with scale (§V-A)."
    );
}
