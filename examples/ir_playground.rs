//! IR playground: write a program in the textual IR, run the interweaving
//! pass pipeline over it, and watch the code change.
//!
//! Demonstrates the compiler half of Fig. 1 end-to-end on a program parsed
//! from text: inlining, CARAT instrumentation (with the hoist/elide
//! optimizations), timing injection, cleanup optimization, and a final
//! guarded run — with the static coverage proof at the end.
//!
//! Run with: `cargo run --example ir_playground`

use interweave::carat;
use interweave::fibers::timing_pass::InjectTiming;
use interweave::ir::inline::Inline;
use interweave::ir::interp::{Interp, InterpConfig};
use interweave::ir::opt::{ConstFold, Dce};
use interweave::ir::passes::Pass;
use interweave::ir::text::{parse_module, print_module};
use interweave::ir::types::Val;

const SOURCE: &str = r#"
; sum of squares via a helper: total = sum_{i<n} square(a[i])
fn @square(params=1, regs=3) {
bb0:
  %1 = mov %0
  %2 = mul %1, %1
  ret %2
}
fn @main(params=1, regs=15) {
bb0:
  %1 = const 8
  %2 = mul %0, %1
  %3 = alloc %2
  %4 = const 0
  %5 = mov %4
  %6 = const 1
  br bb1
bb1:
  %7 = cmp.lt %5, %0
  condbr %7, bb2, bb3
bb2:
  %8 = gep %3, %5, 8, 0
  store [%8+0], %5
  %5 = add %5, %6
  br bb1
bb3:
  %9 = mov %4
  %10 = mov %4
  br bb4
bb4:
  %11 = cmp.lt %10, %0
  condbr %11, bb5, bb6
bb5:
  %12 = gep %3, %10, 8, 0
  %13 = load [%12+0]
  %14 = call @square(%13)
  %14 = add %14, %14
  %9 = add %9, %14
  %10 = add %10, %6
  br bb4
bb6:
  free %3
  ret %9
}
"#;

fn main() {
    let mut m = parse_module(SOURCE).expect("playground source parses");
    println!("== parsed module ({} instructions) ==", m.inst_count());

    // 1. Inline the helper.
    let stats = Inline::default().run(&mut m);
    println!("inline: {:?}", stats.counters);

    // 2. CARAT instrumentation with optimization.
    for (pass, stats) in carat::instrument(&mut m, true) {
        println!("{pass}: {:?}", stats.counters);
    }

    // 3. Timing injection (compiler-based preemption).
    let stats = InjectTiming::default().run(&mut m);
    println!("inject-timing: {:?}", stats.counters);

    // 4. Cleanup.
    let f = ConstFold.run(&mut m);
    let d = Dce.run(&mut m);
    println!("const-fold: {:?}  dce: {:?}", f.counters, d.counters);

    // 5. The static coverage proof PIK admission relies on.
    let errs = carat::coverage::verify_coverage(&m);
    println!(
        "coverage: {} ({} instructions after all passes)",
        if errs.is_empty() {
            "every access proven guarded"
        } else {
            "VIOLATIONS FOUND"
        },
        m.inst_count()
    );
    assert!(errs.is_empty());

    // 6. Run it under the CARAT runtime.
    let mut rt = carat::CaratRuntime::new();
    let mut it = Interp::new(InterpConfig::default());
    let main = m.by_name("main").expect("main exists");
    let n = 10i64;
    it.start(&m, main, &[Val::I(n)]);
    let result = it.run_to_completion(&m, &mut rt);
    // Σ 2·i² for i in 0..10 = 2·285 = 570.
    println!(
        "\nmain({n}) = {result:?}  (guards run: {}, faults: {})",
        rt.stats.guards + rt.stats.range_guards,
        rt.stats.faults
    );
    assert_eq!(result, Some(Val::I(570)));

    println!("\n== final IR ==\n{}", print_module(&m));
}
