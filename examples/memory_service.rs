//! Memory-management scenario (§IV-A): a long-running kernel-resident
//! service whose heap fragments, repaired online by CARAT defragmentation.
//!
//! The service is compiled with the full CARAT pipeline, attested, and
//! admitted into the PIK kernel. It fragments its heap building a linked
//! structure with transient padding, reaches a quiescent point, and the
//! kernel compacts its memory — moving live allocations and patching every
//! pointer (stored *and* register-held) — then the service resumes and
//! verifies its own data. No paging hardware is involved at any point.
//!
//! Run with: `cargo run --example memory_service`

use interweave::carat::defrag::{compact, fragmentation_demo};
use interweave::carat::pik::PikSystem;
use interweave::ir::interp::ExecStatus;
use interweave::ir::types::Val;

fn main() {
    let (module, entry) = fragmentation_demo("service");
    let n = 128i64;

    // Trusted compilation + attestation + kernel admission (§IV-A's PIK).
    let mut sys = PikSystem::new();
    let (compiled, attestation) = sys.compile(module);
    println!(
        "compiled service: {} instructions, attestation hash {:#018x}",
        compiled.inst_count(),
        attestation.hash
    );
    let pid = sys
        .admit(compiled, attestation, entry, vec![Val::I(n)])
        .expect("attested module admits");
    println!("admitted as PIK process {pid} (kernel mode, physical addresses)");

    // Phase 1: run to the quiescent point, fragmenting along the way.
    loop {
        match sys.processes[pid].run_slice(50_000) {
            ExecStatus::Yielded => break,
            ExecStatus::OutOfFuel => continue,
            other => panic!("unexpected: {other:?}"),
        }
    }
    let p = &mut sys.processes[pid];
    println!(
        "\nquiescent: {} live allocations, {} free holes, {} tracked escapes",
        p.interp.mem.n_allocs(),
        p.interp.mem.free_holes(),
        p.runtime.escape_count()
    );

    // Phase 2: the kernel compacts the process's heap.
    let report = compact(&mut p.interp, &mut p.runtime);
    println!(
        "defrag: moved {} allocations ({} bytes), patched {} registers, holes {} -> {}",
        report.moves,
        report.bytes_moved,
        report.regs_patched,
        report.holes_before,
        report.holes_after
    );

    // Phase 3: resume; the service walks its structure through patched
    // pointers.
    match sys.processes[pid].run_slice(u64::MAX / 4) {
        ExecStatus::Done(Some(Val::I(sum))) => {
            assert_eq!(sum, n * (n - 1) / 2);
            println!("service resumed and verified its data: sum = {sum} (correct)");
        }
        other => panic!("service failed after defrag: {other:?}"),
    }
    println!(
        "\nThis is §IV-A's claim end-to-end: protection and memory mobility at\n\
         arbitrary granularity, with zero hardware translation."
    );
}
